// Quickstart: the full plan-bouquet pipeline on the paper's 1D example
// query EQ (Figure 1) — POSP generation, PIC, isocost contours, bouquet
// identification, and a simulated robust execution.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "bouquet/bounds.h"
#include "bouquet/bouquet.h"
#include "bouquet/simulator.h"
#include "common/str_util.h"
#include "ess/pic.h"
#include "ess/posp_generator.h"
#include "robustness/native.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

int main() {
  using namespace bouquet;

  // 1. Catalog metadata at TPC-H scale factor 1 (the paper's 1GB setup).
  const Catalog catalog = MakeTpchCatalog(1.0);

  // 2. The example query EQ: part x lineitem x orders, with an error-prone
  //    selection on p_retailprice (a 1D selectivity space).
  const QuerySpec query = MakeEqQuery(catalog);
  const Status valid = query.Validate(catalog);
  if (!valid.ok()) {
    std::printf("query invalid: %s\n", valid.ToString().c_str());
    return 1;
  }

  // 3. Generate the POSP by optimizing at every grid point (selectivity
  //    injection under the hood).
  const EssGrid grid = EssGrid::WithDefaultResolution(query);
  QueryOptimizer opt(query, catalog, CostParams::Postgres());
  PospStats stats;
  const PlanDiagram diagram = GeneratePosp(query, catalog,
                                           CostParams::Postgres(), grid,
                                           PospOptions{}, &stats);
  std::printf("POSP: %d plans over %llu grid points (%lld optimizer calls)\n",
              diagram.num_plans(),
              static_cast<unsigned long long>(grid.num_points()),
              stats.optimizer_calls);
  std::printf("PIC: Cmin=%s Cmax=%s monotone=%s\n",
              FormatSci(diagram.Cmin()).c_str(),
              FormatSci(diagram.Cmax()).c_str(),
              IsPicMonotone(diagram) ? "yes" : "NO");

  // 4. Identify the plan bouquet (isocost ratio 2, anorexic lambda 20%).
  const PlanBouquet bouquet = BuildBouquet(diagram, &opt);
  std::printf("Bouquet: %d plans across %zu isocost contours, rho=%d\n",
              bouquet.cardinality(), bouquet.contours.size(), bouquet.rho());
  std::printf("MSO guarantee: %.1f (Theorem 1/3 with lambda)\n",
              MultiDMsoBound(bouquet.params.ratio, bouquet.rho(),
                             bouquet.params.lambda));

  // 5. Simulate a robust execution at an "actual" selectivity of ~5%.
  GridPoint qa_pt(1, grid.AxisFloor(0, 0.05));
  const uint64_t qa = grid.LinearIndex(qa_pt);
  BouquetSimulator sim(bouquet, diagram, &opt);
  const SimResult run = sim.RunBasic(qa);
  std::printf("\nExecution at qa = %s:\n",
              FormatPct(grid.axis(0)[qa_pt[0]]).c_str());
  for (const auto& step : run.steps) {
    std::printf("  contour %d: plan P%d budget %-10s charged %-10s %s\n",
                step.contour + 1, step.plan_id,
                FormatSci(step.budget).c_str(),
                FormatSci(step.charged).c_str(),
                step.completed ? "-> completed" : "(exhausted)");
  }
  std::printf("Total cost %s vs optimal %s  =>  sub-optimality %.2f\n",
              FormatSci(run.total_cost).c_str(),
              FormatSci(diagram.cost_at(qa)).c_str(), sim.SubOpt(run, qa));

  // 6. Contrast with the native optimizer's worst case over the whole space.
  const RobustnessProfile nat = ComputeNativeProfile(diagram, &opt);
  std::printf("\nNative optimizer: MSO=%.1f ASO=%.2f\n", nat.mso, nat.aso);
  return 0;
}

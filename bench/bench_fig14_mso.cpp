// Figure 14: worst-case sub-optimality (MSO) of the native optimizer (NAT),
// the SEER robust-plan baseline, and the plan bouquet (BOU) across the ten
// benchmark error spaces.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bouquet/bounds.h"

namespace bouquet {
namespace {

using benchutil::AllSpaceNames;
using benchutil::BuildSpace;
using benchutil::PrintHeader;

void PrintReproduction() {
  PrintHeader("MSO performance: NAT vs SEER vs BOU (log scale)", "Figure 14");
  std::printf("\n  %-12s %-12s %-12s %-12s %-12s\n", "space", "NAT", "SEER",
              "BOU", "BOU bound");
  for (const auto& name : AllSpaceNames()) {
    auto p = BuildSpace(name);
    const RobustnessProfile nat = ComputeNativeProfile(*p->diagram,
                                                       p->opt.get());
    const SeerResult seer_red = SeerReduce(*p->diagram, p->opt.get(), 0.2);
    const RobustnessProfile seer =
        ComputeAssignmentProfile(*p->diagram, p->opt.get(), seer_red.plan_at);
    BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get());
    const BouquetProfile bou = ComputeBouquetProfile(sim, false);
    std::printf("  %-12s %-12.3g %-12.3g %-12.3g %-12.1f%s\n", name.c_str(),
                nat.mso, seer.mso, bou.mso,
                MultiDMsoBound(2.0, p->bouquet->rho(), 0.2),
                bou.any_fallback ? "  [FALLBACK!]" : "");
  }
  std::printf("\n  Paper's shape: NAT and SEER in 1e3..1e7; BOU around 10 "
              "(e.g. 5D_DS_Q19: 1e6 -> ~10).\n");
}

void BM_NativeProfile3D(benchmark::State& state) {
  auto p = BuildSpace("3D_H_Q5");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeNativeProfile(*p->diagram, p->opt.get()));
  }
}
BENCHMARK(BM_NativeProfile3D);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

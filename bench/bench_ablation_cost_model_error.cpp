// Section 3.4: robustness under bounded cost-modeling errors. Actual
// execution costs are distorted by a deterministic per-(plan, location)
// factor in [1/(1+delta), 1+delta]; the claim is
// MSO_bounded <= MSO_perfect * (1+delta)^2.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bouquet/bounds.h"

namespace bouquet {
namespace {

using benchutil::BuildSpace;
using benchutil::PrintHeader;

void PrintReproduction() {
  PrintHeader("Bounded cost-modeling errors", "Section 3.4");
  std::printf("\n  %-12s %-8s %-14s %-14s %-12s %-16s\n", "space", "delta",
              "MSO(perfect)", "MSO(delta)", "inflation",
              "bound*(1+d)^2");
  for (const char* name : {"3D_H_Q5", "3D_DS_Q96"}) {
    auto p = BuildSpace(name);
    const double guarantee = MultiDMsoBound(2.0, p->bouquet->rho(), 0.2);
    BouquetSimulator perfect(*p->bouquet, *p->diagram, p->opt.get());
    double mso_perfect = 0.0;
    for (uint64_t qa = 0; qa < p->grid->num_points(); ++qa) {
      mso_perfect =
          std::max(mso_perfect, perfect.SubOpt(perfect.RunBasic(qa), qa));
    }
    for (double delta : {0.1, 0.2, 0.4, 0.8}) {
      SimOptions opts;
      opts.model_error_delta = delta;
      BouquetSimulator noisy(*p->bouquet, *p->diagram, p->opt.get(), opts);
      double mso_noisy = 0.0;
      for (uint64_t qa = 0; qa < p->grid->num_points(); ++qa) {
        mso_noisy = std::max(mso_noisy, noisy.SubOpt(noisy.RunBasic(qa), qa));
      }
      // The Section 3.4 guarantee inflates the *worst-case bound*, not the
      // (usually much smaller) observed MSO of the perfect-model runs.
      const double inflated_bound = guarantee * ModelErrorInflation(delta);
      std::printf("  %-12s %-8.1f %-14.2f %-14.2f %-12.2f %-16.2f %s\n",
                  name, delta, mso_perfect, mso_noisy,
                  mso_noisy / mso_perfect, inflated_bound,
                  mso_noisy <= inflated_bound + 1e-9 ? "OK" : "EXCEEDED");
    }
  }
  std::printf("\n  Paper's reference: delta = 0.4 (the TPC-H average of Wu "
              "et al. [24]) costs at most a 2x MSO factor.\n");
}

void BM_NoisySimulation(benchmark::State& state) {
  static auto p = BuildSpace("3D_H_Q5");
  SimOptions opts;
  opts.model_error_delta = 0.4;
  static BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get(), opts);
  uint64_t qa = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunBasic(qa));
    qa = (qa + 41) % p->grid->num_points();
  }
}
BENCHMARK(BM_NoisySimulation);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Theorems 1-3 (Section 3): empirical verification of the worst-case
// guarantees — the r^2/(r-1) bound across ratios on the 1D example, the
// optimality of r = 2, and the multi-D rho-scaled bound.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bouquet/bounds.h"

namespace bouquet {
namespace {

using benchutil::BuildSpace;
using benchutil::PrintHeader;

void PrintReproduction() {
  PrintHeader("Robustness bounds: Theorems 1-3", "Section 3");

  // Theorem 1: sweep the common ratio r on the 1D EQ space and compare the
  // worst observed sub-optimality against r^2/(r-1). Restart accounting,
  // no anorexic inflation: the exact setting of the theorem.
  const Catalog tpch = MakeTpchCatalog(1.0);
  const QuerySpec eq = MakeEqQuery(tpch);
  std::printf("\n  -- Theorem 1 (1D): MSO <= r^2/(r-1) --\n");
  std::printf("  %-6s %-14s %-14s %-10s\n", "r", "observed MSO",
              "theorem bound", "contours");
  for (double r : {1.3, 1.5, 1.8, 2.0, 2.5, 3.0, 4.0}) {
    BouquetParams params;
    params.ratio = r;
    params.anorexic = false;
    auto p = BuildSpace("EQ", 100, CostParams::Postgres(), &eq, &tpch,
                        params);
    SimOptions opts;
    opts.continue_same_plan = false;
    BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get(), opts);
    double mso = 0.0;
    for (uint64_t qa = 0; qa < p->grid->num_points(); ++qa) {
      mso = std::max(mso, sim.SubOpt(sim.RunBasic(qa), qa));
    }
    std::printf("  %-6.1f %-14.2f %-14.2f %-10zu %s\n", r, mso,
                TheoremOneMso(r), p->bouquet->contours.size(),
                mso <= TheoremOneMso(r) * p->bouquet->rho() + 1e-9
                    ? "OK"
                    : "VIOLATION");
  }
  std::printf("  Theorem 2: r = 2 minimizes the bound at 4; no deterministic "
              "algorithm does better.\n");

  // Theorem 3: multi-D bound rho * (1+lambda) * 4.
  std::printf("\n  -- Theorem 3 (multi-D): MSO <= 4(1+lambda)rho --\n");
  std::printf("  %-12s %-6s %-14s %-14s\n", "space", "rho", "observed MSO",
              "bound");
  for (const char* name : {"3D_H_Q5", "3D_DS_Q96", "4D_DS_Q26",
                           "5D_DS_Q19"}) {
    auto p = BuildSpace(name);
    SimOptions opts;
    opts.continue_same_plan = false;
    BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get(), opts);
    double mso = 0.0;
    for (uint64_t qa = 0; qa < p->grid->num_points(); ++qa) {
      mso = std::max(mso, sim.SubOpt(sim.RunBasic(qa), qa));
    }
    const double bound = MultiDMsoBound(2.0, p->bouquet->rho(), 0.2);
    std::printf("  %-12s %-6d %-14.2f %-14.1f %s\n", name, p->bouquet->rho(),
                mso, bound, mso <= bound + 1e-9 ? "OK" : "VIOLATION");
  }
}

void BM_TheoremSweepPoint(benchmark::State& state) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const QuerySpec eq = MakeEqQuery(tpch);
  static auto p = benchutil::BuildSpace("EQ", 100, CostParams::Postgres(),
                                        &eq, &tpch);
  static BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get());
  uint64_t qa = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunBasic(qa));
    qa = (qa + 1) % p->grid->num_points();
  }
}
BENCHMARK(BM_TheoremSweepPoint);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

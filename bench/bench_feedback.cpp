// Cross-query feedback: warm-started contour search, ESS-box shrinking,
// and the robust-baseline shootout (NAT / SEER / PARQO / PAO / bouquet).
//
// Four sections, all emitted to BENCH_feedback.json:
//   warm     — repeat traffic against a feedback-enabled service skips a
//              prefix of the contour ladder, and a warm real-data run
//              returns byte-identical rows to the cold run;
//   shrink   — compiling over the feedback-shrunken ESS box costs fewer
//              optimizer DP calls than the declared-range compile;
//   oracle   — >= 1000 seeded warm runs across fuzz instances: dominated
//              seeds never break the Theorem 3 MSO bound, mispredicted
//              seeds still complete (the warm_start oracle's property,
//              counted here at scale);
//   shootout — MSO / ASO / MaxHarm for the five policies on one space.
//
// `--smoke` runs reduced sizes for the CI perf gate checked by
// scripts/check_feedback_smoke.py.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bouquet/bounds.h"
#include "bouquet/driver.h"
#include "feedback/feedback_store.h"
#include "feedback/warm_start.h"
#include "robustness/pao.h"
#include "robustness/parqo.h"
#include "service/service.h"
#include "testing/generators.h"

namespace bouquet {
namespace {

using benchutil::BuildSpace;
using benchutil::PrintHeader;

// Result rows echo join columns in plan-dependent order, so cross-plan
// result equality is multiset equality over per-row value multisets.
std::vector<Row> CanonicalRows(std::vector<Row> rows) {
  for (Row& row : rows) std::sort(row.begin(), row.end());
  std::sort(rows.begin(), rows.end());
  return rows;
}

// ------------------------------------------------------------------- warm

struct WarmReport {
  uint64_t requests = 0;
  uint64_t feedback_records = 0;
  uint64_t feedback_hits = 0;
  uint64_t warm_runs = 0;
  uint64_t contours_skipped = 0;
  bool rows_identical = false;
  int cold_steps = 0;
  int warm_steps = 0;
  int driver_contours_skipped = 0;
};

WarmReport RunWarmSection(int repeats, double mini_scale) {
  WarmReport r;

  // Service-level repeat traffic: one template, `repeats` identical
  // requests; once the policy's min_observations is met the ladder starts
  // above contour 0.
  {
    const Catalog catalog = MakeTpchCatalog(1.0);
    QuerySpec query = Make2DHQ8a(catalog);
    FeedbackStore store;
    ServiceOptions opts;
    opts.num_threads = 2;
    opts.grid_resolution = 20;
    opts.feedback = &store;
    BouquetService service(catalog, opts);
    ServiceRequest req;
    req.query = query;
    req.actual_selectivities = {0.7, 0.5};
    for (int i = 0; i < repeats; ++i) {
      auto res = service.Run(req);
      if (!res.ok() || !res->sim.completed) {
        std::fprintf(stderr, "warm section: request %d failed\n", i);
        return r;
      }
    }
    const ServiceStats s = service.stats();
    r.requests = s.requests;
    r.feedback_records = s.feedback_records;
    r.feedback_hits = s.feedback_hits;
    r.warm_runs = s.feedback_warm_runs;
    r.contours_skipped = s.feedback_contours_skipped;
  }

  // Driver-level equivalence on real data: the warm run must return the
  // cold run's rows byte-for-byte.
  {
    Database db;
    TpchDataOptions data_opts;
    data_opts.mini_scale = mini_scale;
    MakeTpchDatabase(&db, data_opts);
    Catalog catalog;
    SyncTpchCatalog(db, &catalog);
    QuerySpec query = Make2DHQ8a(catalog);
    BindSelectionConstants(&query, catalog, {0.337, 0.456});
    QueryOptimizer opt(query, catalog, CostParams::Postgres());
    const EssGrid grid(query, {10, 10});
    const PlanDiagram diagram =
        GeneratePosp(query, catalog, CostParams::Postgres(), grid);
    const PlanBouquet bouquet = BuildBouquet(diagram, &opt);

    BouquetDriver cold(bouquet, diagram, &opt, &db);
    const DriverResult cold_res = cold.RunOptimized();
    BouquetDriver warm(bouquet, diagram, &opt, &db);
    warm.SetWarmStart(1);
    const DriverResult warm_res = warm.RunOptimized();
    r.rows_identical =
        cold_res.completed && warm_res.completed &&
        CanonicalRows(cold_res.rows) == CanonicalRows(warm_res.rows);
    r.cold_steps = static_cast<int>(cold_res.steps.size());
    r.warm_steps = static_cast<int>(warm_res.steps.size());
    r.driver_contours_skipped = warm_res.warm_contours_skipped;
  }
  return r;
}

// ----------------------------------------------------------------- shrink

struct ShrinkReport {
  uint64_t full_points = 0;
  uint64_t shrunken_points = 0;
  int64_t full_dp_calls = 0;
  int64_t shrunken_dp_calls = 0;
  double full_wall_seconds = 0.0;
  double shrunken_wall_seconds = 0.0;
};

ShrinkReport RunShrinkSection(int resolution) {
  ShrinkReport r;
  const Catalog catalog = MakeTpchCatalog(1.0);
  const QuerySpec query = Make2DHQ8a(catalog);
  const std::vector<int> res(static_cast<size_t>(query.NumDims()),
                             resolution);

  const EssGrid full(query, res);
  r.full_points = full.num_points();
  PospStats full_stats;
  GeneratePosp(query, catalog, CostParams::Postgres(), full, {}, &full_stats);
  r.full_dp_calls = full_stats.dp_calls;
  r.full_wall_seconds = full_stats.wall_seconds;

  // Feedback equivalent to repeat traffic concentrated around the paper's
  // q_a: observed support [0.2, 0.6] on both dimensions.
  TemplateFeedback fb;
  fb.observations = 16;
  fb.max_final_contour = 3;
  fb.support.assign(static_cast<size_t>(query.NumDims()), {0.2, 0.6});
  WarmStartPolicy policy;
  EssBox box;
  if (!ShrunkenBox(query, fb, policy, &box)) {
    std::fprintf(stderr, "shrink section: box did not shrink\n");
    return r;
  }
  const std::vector<int> sres =
      ShrunkenResolutions(query, box, res, policy.min_resolution);
  const EssGrid shrunken(query, sres, box.lo, box.hi);
  r.shrunken_points = shrunken.num_points();
  PospStats shrunken_stats;
  GeneratePosp(query, catalog, CostParams::Postgres(), shrunken, {},
               &shrunken_stats);
  r.shrunken_dp_calls = shrunken_stats.dp_calls;
  r.shrunken_wall_seconds = shrunken_stats.wall_seconds;
  return r;
}

// ----------------------------------------------------------------- oracle

struct OracleReport {
  int instances = 0;
  int64_t warm_runs = 0;
  int64_t mispredicted_runs = 0;
  int64_t violations = 0;
};

// The warm_start oracle's property, counted at scale: dominated seeds obey
// the Theorem 3 bound, every warm start completes without the fallback.
OracleReport RunOracleSection(int64_t min_runs) {
  OracleReport r;
  FuzzGenOptions gen;
  gen.max_tables = 4;
  gen.max_dims = 2;
  gen.max_grid_points = 600;
  for (uint64_t seed = 1; r.warm_runs + r.mispredicted_runs < min_runs;
       ++seed) {
    const FuzzInstance inst = GenerateFuzzInstance(seed, gen);
    const EssGrid grid(inst.query, inst.resolutions);
    PlanDiagram diagram = GeneratePosp(inst.query, inst.catalog,
                                       inst.cost_params, grid);
    QueryOptimizer opt(inst.query, inst.catalog, inst.cost_params);
    const PlanBouquet bouquet =
        BuildBouquet(diagram, &opt, inst.bouquet_params);
    if (bouquet.contours.empty()) continue;
    ++r.instances;
    SimOptions restart;
    restart.continue_same_plan = false;
    const BouquetSimulator sim(bouquet, diagram, &opt, restart);
    const double bound = BouquetMsoBound(bouquet);
    const uint64_t n = grid.num_points();
    const uint64_t stride = std::max<uint64_t>(1, n / 48);
    for (uint64_t qa = 0; qa < n; qa += stride) {
      GridPoint half = grid.PointAt(qa);
      for (int& c : half) c /= 2;
      for (const uint64_t s : {grid.LinearIndex(half), qa}) {
        const int start = WarmStartContour(bouquet, diagram.cost_at(s), 1);
        const SimResult run = sim.RunOptimizedWarm(qa, start);
        ++r.warm_runs;
        if (!run.completed || run.fallback_used ||
            sim.SubOpt(run, qa) > bound * (1.0 + 1e-6)) {
          ++r.violations;
        }
      }
      const int wild = WarmStartContour(bouquet, diagram.cost_at(n - 1), 0);
      const SimResult run = sim.RunOptimizedWarm(qa, wild);
      ++r.mispredicted_runs;
      if (!run.completed || run.fallback_used) ++r.violations;
    }
  }
  return r;
}

// --------------------------------------------------------------- shootout

struct ShootoutRow {
  std::string policy;
  double mso = 0.0;
  double aso = 0.0;
  double max_harm = 0.0;
  int plans = 0;
};

std::vector<ShootoutRow> RunShootout(int resolution) {
  auto p = BuildSpace("3D_H_Q5", resolution);
  QueryOptimizer* opt = p->opt.get();
  const PlanDiagram& diagram = *p->diagram;

  std::vector<ShootoutRow> rows;
  const RobustnessProfile native = ComputeNativeProfile(diagram, opt);
  rows.push_back({"native", native.mso, native.aso,
                  MaxHarm(native.subopt_worst, native.subopt_worst),
                  native.num_plans});

  const double lambda = p->bouquet->params.lambda;
  const SeerResult seer = SeerReduce(diagram, opt, lambda);
  const RobustnessProfile seer_prof =
      ComputeAssignmentProfile(diagram, opt, seer.plan_at);
  rows.push_back({"seer", seer_prof.mso, seer_prof.aso,
                  MaxHarm(seer_prof.subopt_worst, native.subopt_worst),
                  seer.plans_after});

  const ParqoResult parqo = ParqoSelect(diagram, opt);
  const RobustnessProfile parqo_prof =
      ComputeAssignmentProfile(diagram, opt, parqo.plan_at);
  rows.push_back({"parqo", parqo_prof.mso, parqo_prof.aso,
                  MaxHarm(parqo_prof.subopt_worst, native.subopt_worst),
                  parqo.distinct_plans});

  const PaoResult pao = PaoSelect(diagram, opt);
  const RobustnessProfile pao_prof =
      ComputeAssignmentProfile(diagram, opt, pao.plan_at);
  rows.push_back({"pao", pao_prof.mso, pao_prof.aso,
                  MaxHarm(pao_prof.subopt_worst, native.subopt_worst),
                  pao.distinct_plans});

  const BouquetSimulator sim(*p->bouquet, diagram, opt);
  const BouquetProfile bq = ComputeBouquetProfile(sim, /*optimized=*/true);
  rows.push_back({"bouquet", bq.mso, bq.aso,
                  MaxHarm(bq.subopt, native.subopt_worst),
                  p->bouquet->cardinality()});
  return rows;
}

// ----------------------------------------------------------------- output

void PrintReports(const WarmReport& warm, const ShrinkReport& shrink,
                  const OracleReport& oracle,
                  const std::vector<ShootoutRow>& shootout) {
  std::printf("\n  -- warm-started contour search --\n");
  std::printf("  %llu requests, %llu recorded, %llu warm runs, "
              "%llu contours skipped\n",
              static_cast<unsigned long long>(warm.requests),
              static_cast<unsigned long long>(warm.feedback_records),
              static_cast<unsigned long long>(warm.warm_runs),
              static_cast<unsigned long long>(warm.contours_skipped));
  std::printf("  real-data warm run: %d -> %d steps, rows %s\n",
              warm.cold_steps, warm.warm_steps,
              warm.rows_identical ? "identical" : "DIVERGED");

  std::printf("\n  -- feedback-shrunken ESS box --\n");
  std::printf("  full:     %llu points, %lld dp calls, %.3fs\n",
              static_cast<unsigned long long>(shrink.full_points),
              static_cast<long long>(shrink.full_dp_calls),
              shrink.full_wall_seconds);
  std::printf("  shrunken: %llu points, %lld dp calls, %.3fs\n",
              static_cast<unsigned long long>(shrink.shrunken_points),
              static_cast<long long>(shrink.shrunken_dp_calls),
              shrink.shrunken_wall_seconds);

  std::printf("\n  -- warm-start MSO-bound oracle --\n");
  std::printf("  %d instances, %lld dominated + %lld mispredicted runs, "
              "%lld violations\n",
              oracle.instances, static_cast<long long>(oracle.warm_runs),
              static_cast<long long>(oracle.mispredicted_runs),
              static_cast<long long>(oracle.violations));

  std::printf("\n  -- robust-baseline shootout (3D_H_Q5) --\n");
  std::printf("  %-10s %-10s %-10s %-10s %s\n", "policy", "MSO", "ASO",
              "MaxHarm", "plans");
  for (const ShootoutRow& row : shootout) {
    std::printf("  %-10s %-10.3f %-10.3f %-10.3f %d\n", row.policy.c_str(),
                row.mso, row.aso, row.max_harm, row.plans);
  }
}

void WriteBenchJson(const WarmReport& warm, const ShrinkReport& shrink,
                    const OracleReport& oracle,
                    const std::vector<ShootoutRow>& shootout,
                    const char* path) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"warm\": {\n"
      "    \"requests\": %llu,\n"
      "    \"feedback_records\": %llu,\n"
      "    \"feedback_hits\": %llu,\n"
      "    \"warm_runs\": %llu,\n"
      "    \"contours_skipped\": %llu,\n"
      "    \"rows_identical\": %s,\n"
      "    \"cold_steps\": %d,\n"
      "    \"warm_steps\": %d,\n"
      "    \"driver_contours_skipped\": %d\n"
      "  },\n",
      static_cast<unsigned long long>(warm.requests),
      static_cast<unsigned long long>(warm.feedback_records),
      static_cast<unsigned long long>(warm.feedback_hits),
      static_cast<unsigned long long>(warm.warm_runs),
      static_cast<unsigned long long>(warm.contours_skipped),
      warm.rows_identical ? "true" : "false", warm.cold_steps,
      warm.warm_steps, warm.driver_contours_skipped);
  std::fprintf(
      f,
      "  \"shrink\": {\n"
      "    \"full_points\": %llu,\n"
      "    \"shrunken_points\": %llu,\n"
      "    \"full_dp_calls\": %lld,\n"
      "    \"shrunken_dp_calls\": %lld,\n"
      "    \"full_wall_seconds\": %.6f,\n"
      "    \"shrunken_wall_seconds\": %.6f\n"
      "  },\n",
      static_cast<unsigned long long>(shrink.full_points),
      static_cast<unsigned long long>(shrink.shrunken_points),
      static_cast<long long>(shrink.full_dp_calls),
      static_cast<long long>(shrink.shrunken_dp_calls),
      shrink.full_wall_seconds, shrink.shrunken_wall_seconds);
  std::fprintf(f,
               "  \"oracle\": {\n"
               "    \"instances\": %d,\n"
               "    \"warm_runs\": %lld,\n"
               "    \"mispredicted_runs\": %lld,\n"
               "    \"violations\": %lld\n"
               "  },\n",
               oracle.instances, static_cast<long long>(oracle.warm_runs),
               static_cast<long long>(oracle.mispredicted_runs),
               static_cast<long long>(oracle.violations));
  std::fprintf(f, "  \"shootout\": [\n");
  for (size_t i = 0; i < shootout.size(); ++i) {
    const ShootoutRow& row = shootout[i];
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"mso\": %.6f, \"aso\": %.6f, "
                 "\"max_harm\": %.6f, \"plans\": %d}%s\n",
                 row.policy.c_str(), row.mso, row.aso, row.max_harm,
                 row.plans, i + 1 < shootout.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n  wrote %s\n", path);
}

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bouquet::PrintHeader(
      "Cross-query feedback: warm starts, box shrinking, baseline shootout",
      "ROADMAP item 5");
  const auto warm =
      bouquet::RunWarmSection(smoke ? 6 : 10, smoke ? 0.1 : 0.2);
  const auto shrink = bouquet::RunShrinkSection(smoke ? 40 : 64);
  const auto oracle = bouquet::RunOracleSection(smoke ? 1000 : 4000);
  const auto shootout = bouquet::RunShootout(smoke ? 10 : 16);
  bouquet::PrintReports(warm, shrink, oracle, shootout);
  bouquet::WriteBenchJson(warm, shrink, oracle, shootout,
                          "BENCH_feedback.json");
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

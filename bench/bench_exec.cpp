// Executor throughput: vectorized batch engine vs the scalar Volcano
// oracle on TPC-H mini data, plus the bit-compatibility spot check
// (identical charged cost at every shape).
//
// Shapes:
//   scan — a Q6-style conjunctive range scan of lineitem: four BETWEEN
//          pairs (eight range predicates, wide ones first, combined
//          selectivity ~1.2%);
//   join — hash join with a filtered orders probe side and the full
//          lineitem table as the build side (build-heavy).
//
// Scalar and batch reps are interleaved and each side takes its best
// time, so a noisy neighbor inflates both engines alike rather than
// whichever happened to run during the spike.
//
// Default mode prints the reproduction-style report with a batch-size
// sweep. `--smoke [out.json]` runs the same measurement with CI-sized
// repetitions and writes BENCH_exec.json for scripts/check_exec_smoke.py,
// which gates the single-thread scan/join speedup floors and the
// charged-cost bit-equality between engines.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "executor/batch.h"
#include "executor/builder.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

struct ExecBench {
  Database db;
  Catalog catalog;
  QuerySpec query;
  std::unique_ptr<CostModel> cm;
  PlanNodeRef scan_plan;
  PlanNodeRef join_plan;
  int64_t lineitem_rows = 0;

  void Build(double mini_scale) {
    TpchDataOptions opts;
    opts.mini_scale = mini_scale;
    MakeTpchDatabase(&db, opts);
    SyncTpchCatalog(db, &catalog);
    lineitem_rows = db.table("lineitem").num_rows();

    query.name = "exec_bench";
    query.tables = {"orders", "lineitem"};
    query.joins = {
        JoinPredicate{"orders", "o_orderkey", "lineitem", "l_orderkey", -1.0}};
    query.filters = {
        SelectionPredicate{"lineitem", "l_extendedprice",
                           CompareOp::kGreaterEqual, 100000, -1.0},
        SelectionPredicate{"lineitem", "l_quantity", CompareOp::kGreaterEqual,
                           5, -1.0},
        SelectionPredicate{"lineitem", "l_discount", CompareOp::kGreaterEqual,
                           1, -1.0},
        SelectionPredicate{"lineitem", "l_shipdate", CompareOp::kGreaterEqual,
                           400, -1.0},
        SelectionPredicate{"lineitem", "l_quantity", CompareOp::kLess, 38,
                           -1.0},
        SelectionPredicate{"lineitem", "l_shipdate", CompareOp::kLess, 1900,
                           -1.0},
        SelectionPredicate{"lineitem", "l_discount", CompareOp::kLessEqual, 6,
                           -1.0},
        SelectionPredicate{"lineitem", "l_extendedprice", CompareOp::kLess,
                           600000, -1.0},
        SelectionPredicate{"orders", "o_totalprice", CompareOp::kLess, 600000,
                           -1.0}};
    cm = std::make_unique<CostModel>(CostParams::Postgres());

    auto scan = std::make_shared<PlanNode>();
    scan->op = OpType::kSeqScan;
    scan->table_idx = 1;  // lineitem
    scan->filter_idxs = {0, 1, 2, 3, 4, 5, 6, 7};
    scan_plan = scan;

    auto probe = std::make_shared<PlanNode>();
    probe->op = OpType::kSeqScan;
    probe->table_idx = 0;  // orders (filtered probe side)
    probe->filter_idxs = {8};
    auto build = std::make_shared<PlanNode>();
    build->op = OpType::kSeqScan;
    build->table_idx = 1;  // lineitem (build side)
    auto join = std::make_shared<PlanNode>();
    join->op = OpType::kHashJoin;
    join->left = probe;
    join->right = build;
    join->join_idxs = {0};
    join_plan = join;
  }

  ExecContext MakeContext(int batch_size) const {
    ExecContext ctx;
    ctx.query = &query;
    ctx.catalog = &catalog;
    ctx.db = const_cast<Database*>(&db);
    ctx.cost_model = cm.get();
    ctx.batch_size = batch_size;
    return ctx;
  }
};

struct Measurement {
  double seconds = 0.0;      ///< best-of-reps wall time
  double charged = 0.0;
  int64_t rows_emitted = 0;
};

struct Comparison {
  Measurement scalar;
  Measurement batch;
  double speedup = 0.0;
  bool charged_equal = false;  ///< bit-exact
  bool rows_equal = false;
};

Comparison Compare(const ExecBench& bench, const PlanNode& plan,
                   int batch_size, int reps) {
  Comparison c;
  c.scalar.seconds = std::numeric_limits<double>::infinity();
  c.batch.seconds = std::numeric_limits<double>::infinity();
  for (int i = 0; i <= reps; ++i) {  // rep 0 is the warmup (index builds)
    for (const ExecEngine engine : {ExecEngine::kScalar, ExecEngine::kBatch}) {
      Measurement& m = engine == ExecEngine::kScalar ? c.scalar : c.batch;
      ExecContext ctx = bench.MakeContext(batch_size);
      const auto t0 = std::chrono::steady_clock::now();
      const ExecutionOutcome out = ExecutePlanWith(
          engine, plan, &ctx, std::numeric_limits<double>::infinity(),
          /*results=*/nullptr);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      m.charged = out.cost_charged;
      m.rows_emitted = out.rows_emitted;
      if (i > 0) m.seconds = std::min(m.seconds, secs);
    }
  }
  c.speedup = c.batch.seconds > 0.0 ? c.scalar.seconds / c.batch.seconds : 0.0;
  c.charged_equal = c.scalar.charged == c.batch.charged;
  c.rows_equal = c.scalar.rows_emitted == c.batch.rows_emitted;
  return c;
}

void PrintComparison(const char* name, const ExecBench& bench,
                     const Comparison& c) {
  const double rows = static_cast<double>(bench.lineitem_rows);
  std::printf("  %-18s scalar %8.2f ms (%6.2f Mrows/s)   "
              "batch %8.2f ms (%6.2f Mrows/s)   speedup %5.2fx   "
              "charged %s\n",
              name, c.scalar.seconds * 1e3,
              rows / c.scalar.seconds / 1e6, c.batch.seconds * 1e3,
              rows / c.batch.seconds / 1e6, c.speedup,
              c.charged_equal ? "bit-equal" : "DIVERGED");
}

void PrintReproduction() {
  std::printf("Vectorized batch executor vs scalar Volcano oracle\n");
  std::printf("(TPC-H mini, single thread; rows/s normalized to lineitem "
              "input rows)\n\n");
  ExecBench bench;
  bench.Build(/*mini_scale=*/2.0);
  std::printf("  lineitem %lld rows, orders %lld rows\n\n",
              static_cast<long long>(bench.lineitem_rows),
              static_cast<long long>(bench.db.table("orders").num_rows()));
  PrintComparison("filtered scan", bench,
                  Compare(bench, *bench.scan_plan, 1024, 9));
  PrintComparison("hash join", bench,
                  Compare(bench, *bench.join_plan, 1024, 9));
  std::printf("\n  batch-size sweep (hash join):\n");
  for (const int bsz : {64, 256, 1024, 4096}) {
    const Comparison c = Compare(bench, *bench.join_plan, bsz, 3);
    std::printf("    batch_size %5d: %8.2f ms   speedup %5.2fx   "
                "charged %s\n",
                bsz, c.batch.seconds * 1e3, c.speedup,
                c.charged_equal ? "bit-equal" : "DIVERGED");
  }
}

int RunSmoke(const char* out_path) {
  ExecBench bench;
  bench.Build(/*mini_scale=*/2.0);
  const Comparison scan = Compare(bench, *bench.scan_plan, 1024, 9);
  const Comparison join = Compare(bench, *bench.join_plan, 1024, 9);
  PrintComparison("filtered scan", bench, scan);
  PrintComparison("hash join", bench, join);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  auto section = [&](const char* name, const Comparison& c, bool last) {
    std::fprintf(f, "  \"%s\": {\n", name);
    std::fprintf(f, "    \"input_rows\": %lld,\n",
                 static_cast<long long>(bench.lineitem_rows));
    std::fprintf(f, "    \"rows_emitted\": %lld,\n",
                 static_cast<long long>(c.batch.rows_emitted));
    std::fprintf(f, "    \"scalar_seconds\": %.6f,\n", c.scalar.seconds);
    std::fprintf(f, "    \"batch_seconds\": %.6f,\n", c.batch.seconds);
    std::fprintf(f, "    \"scalar_rows_per_sec\": %.1f,\n",
                 bench.lineitem_rows / c.scalar.seconds);
    std::fprintf(f, "    \"batch_rows_per_sec\": %.1f,\n",
                 bench.lineitem_rows / c.batch.seconds);
    std::fprintf(f, "    \"speedup\": %.3f,\n", c.speedup);
    std::fprintf(f, "    \"charged_bit_equal\": %s,\n",
                 c.charged_equal ? "true" : "false");
    std::fprintf(f, "    \"rows_equal\": %s\n",
                 c.rows_equal ? "true" : "false");
    std::fprintf(f, "  }%s\n", last ? "" : ",");
  };
  std::fprintf(f, "{\n");
  section("scan", scan, /*last=*/false);
  section("join", join, /*last=*/true);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("exec-smoke: wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      const char* out = i + 1 < argc ? argv[i + 1] : "BENCH_exec.json";
      return bouquet::RunSmoke(out);
    }
  }
  bouquet::PrintReproduction();
  return 0;
}

// Shared scaffolding for the reproduction benches: builds the full
// compile-time pipeline (catalog -> space -> grid -> POSP diagram ->
// bouquet) for a named workload space, with stable ownership so the
// pieces can reference one another.

#ifndef BOUQUET_BENCH_BENCH_UTIL_H_
#define BOUQUET_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bouquet/bouquet.h"
#include "bouquet/simulator.h"
#include "ess/posp_generator.h"
#include "optimizer/optimizer.h"
#include "robustness/metrics.h"
#include "robustness/native.h"
#include "robustness/seer.h"
#include "workloads/spaces.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace benchutil {

/// Everything the benches need for one error space, with owned storage.
struct SpacePipeline {
  Catalog catalog;  ///< the benchmark catalog this space runs against
  QuerySpec query;
  std::string name;
  std::unique_ptr<EssGrid> grid;
  std::unique_ptr<PlanDiagram> diagram;
  std::unique_ptr<QueryOptimizer> opt;
  std::unique_ptr<PlanBouquet> bouquet;
  PospStats posp_stats;
};

/// Builds the pipeline for one of the ten Table 2 spaces (or a custom
/// query when `custom` is non-null). Resolution <= 0 uses the defaults.
inline std::unique_ptr<SpacePipeline> BuildSpace(
    const std::string& name, int resolution = 0,
    CostParams params = CostParams::Postgres(),
    const QuerySpec* custom = nullptr, const Catalog* custom_catalog = nullptr,
    const BouquetParams& bouquet_params = {}) {
  auto p = std::make_unique<SpacePipeline>();
  if (custom != nullptr) {
    p->catalog = *custom_catalog;
    p->query = *custom;
    p->name = custom->name;
  } else {
    const Catalog tpch = MakeTpchCatalog(1.0);
    const Catalog tpcds = MakeTpcdsCatalog(100.0);
    NamedSpace space = GetSpace(name, tpch, tpcds);
    p->catalog = space.benchmark == "H" ? tpch : tpcds;
    p->query = std::move(space.query);
    p->name = name;
  }
  const int dims = p->query.NumDims();
  const int res =
      resolution > 0 ? resolution : EssGrid::DefaultResolutionForDims(dims);
  p->grid = std::make_unique<EssGrid>(p->query, std::vector<int>(dims, res));
  PospOptions opts;
  opts.num_threads = 8;
  p->diagram = std::make_unique<PlanDiagram>(
      GeneratePosp(p->query, p->catalog, params, *p->grid, opts,
                   &p->posp_stats));
  p->opt = std::make_unique<QueryOptimizer>(p->query, p->catalog, params);
  p->bouquet = std::make_unique<PlanBouquet>(
      BuildBouquet(*p->diagram, p->opt.get(), bouquet_params));
  return p;
}

/// The ten Table 2 space names, in the paper's order.
inline std::vector<std::string> AllSpaceNames() {
  return {"3D_H_Q5",   "3D_H_Q7",   "4D_H_Q8",   "5D_H_Q7",  "3D_DS_Q15",
          "3D_DS_Q96", "4D_DS_Q7",  "4D_DS_Q26", "4D_DS_Q91", "5D_DS_Q19"};
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n=============================================================="
              "==================\n");
  std::printf("%s\n(reproduces %s of 'Plan Bouquets', SIGMOD 2014)\n", title,
              paper_ref);
  std::printf("================================================================"
              "================\n");
}

}  // namespace benchutil
}  // namespace bouquet

#endif  // BOUQUET_BENCH_BENCH_UTIL_H_

// Figures 2 & 3: the 1D example query EQ — POSP plans with their optimality
// ranges, the PIC on a log-log grid, the geometric isocost ladder, and the
// plan-bouquet identification at the IC/PIC intersections.

#include <benchmark/benchmark.h>

#include <set>

#include "bench_util.h"
#include "bouquet/contours.h"
#include "common/str_util.h"
#include "ess/pic.h"

namespace bouquet {
namespace {

using benchutil::BuildSpace;
using benchutil::PrintHeader;

std::unique_ptr<benchutil::SpacePipeline> BuildEq() {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const QuerySpec eq = MakeEqQuery(tpch);
  return BuildSpace("EQ", /*resolution=*/100, CostParams::Postgres(), &eq,
                    &tpch);
}

void PrintReproduction() {
  auto p = BuildEq();
  const EssGrid& grid = *p->grid;
  const PlanDiagram& d = *p->diagram;

  PrintHeader("1D POSP, PIC and isocost discretization for query EQ",
              "Figures 2 and 3");

  // Figure 2: POSP plans and the selectivity range where each is optimal.
  std::printf("\n-- POSP plans on the p_retailprice dimension (Figure 2) --\n");
  int current = d.plan_at(0);
  double range_start = grid.axis(0).front();
  for (uint64_t i = 1; i <= grid.num_points(); ++i) {
    if (i == grid.num_points() || d.plan_at(i) != current) {
      const double range_end = grid.axis(0)[i - 1];
      std::printf("  P%-2d optimal in (%s, %s]  :  %s\n", current + 1,
                  FormatPct(range_start).c_str(), FormatPct(range_end).c_str(),
                  d.plan(current).signature.c_str());
      if (i < grid.num_points()) {
        current = d.plan_at(i);
        range_start = grid.axis(0)[i];
      }
    }
  }
  std::printf("  POSP cardinality: %d\n", d.num_plans());

  // Figure 3: the PIC with the isocost ladder and intersections.
  const ContourSet cs = IdentifyContours(d, 2.0);
  std::printf("\n-- PIC profile (log-log; %llu samples) --\n",
              static_cast<unsigned long long>(grid.num_points()));
  std::printf("  %-12s %-12s %s\n", "selectivity", "PIC cost", "optimal plan");
  for (uint64_t i = 0; i < grid.num_points(); i += 9) {
    std::printf("  %-12s %-12s P%d\n", FormatPct(grid.axis(0)[i]).c_str(),
                FormatSci(d.cost_at(i)).c_str(), d.plan_at(i) + 1);
  }
  std::printf("  Cmin = %s   Cmax = %s   Cmax/Cmin = %.1f\n",
              FormatSci(d.Cmin()).c_str(), FormatSci(d.Cmax()).c_str(),
              d.Cmax() / d.Cmin());

  std::printf("\n-- Isocost steps (geometric, r = 2) and intersections --\n");
  std::printf("  %-5s %-12s %-14s %s\n", "IC", "cost", "selectivity",
              "bouquet plan");
  std::set<int> bouquet_plans;
  for (size_t k = 0; k < cs.step_costs.size(); ++k) {
    const uint64_t q = cs.points[k][0];
    const int plan = d.plan_at(q);
    bouquet_plans.insert(plan);
    std::printf("  IC%-3zu %-12s %-14s P%d\n", k + 1,
                FormatSci(cs.step_costs[k]).c_str(),
                FormatPct(grid.SelectivityAt(q)[0]).c_str(), plan + 1);
  }
  std::printf("\n  Plan bouquet (before anorexic reduction): {");
  bool first = true;
  for (int pl : bouquet_plans) {
    std::printf("%sP%d", first ? "" : ", ", pl + 1);
    first = false;
  }
  std::printf("}  (cardinality %zu of %d POSP plans)\n", bouquet_plans.size(),
              d.num_plans());
  std::printf("  After anorexic reduction (lambda=20%%): cardinality %d, "
              "%zu contours\n",
              p->bouquet->cardinality(), p->bouquet->contours.size());
}

void BM_Optimize1DPoint(benchmark::State& state) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const QuerySpec eq = MakeEqQuery(tpch);
  QueryOptimizer opt(eq, tpch, CostParams::Postgres());
  double s = 1e-4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.OptimizeAt({s}));
    s = s >= 1.0 ? 1e-4 : s * 1.3;
  }
}
BENCHMARK(BM_Optimize1DPoint);

void BM_GeneratePosp1D(benchmark::State& state) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const QuerySpec eq = MakeEqQuery(tpch);
  const EssGrid grid(eq, {100});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GeneratePosp(eq, tpch, CostParams::Postgres(), grid));
  }
}
BENCHMARK(BM_GeneratePosp1D);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

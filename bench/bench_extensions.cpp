// Extensions study: the three "future work" items of Section 8, implemented
// and measured — (a) incremental bouquet maintenance under database
// scale-up, (b) weak-dimension elimination, (c) underestimate-seeded
// execution.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "bouquet/maintenance.h"
#include "ess/dim_analysis.h"

namespace bouquet {
namespace {

using benchutil::BuildSpace;
using benchutil::PrintHeader;

void PrintMaintenance() {
  std::printf("\n-- (a) Incremental maintenance under database scale-up --\n");
  std::printf("  %-8s %-12s %-12s %-10s %-12s %-12s\n", "growth",
              "fresh calls", "maint calls", "adopted", "worst-dev",
              "speedup");
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  for (double growth : {1.5, 2.0, 4.0, 8.0}) {
    const Catalog old_cat = MakeTpchCatalog(1.0);
    const Catalog new_cat = MakeTpchCatalog(growth);
    const NamedSpace space = GetSpace("4D_H_Q8", old_cat, tpcds);
    const EssGrid grid = EssGrid::WithDefaultResolution(space.query);
    const PlanDiagram old_diag = GeneratePosp(
        space.query, old_cat, CostParams::Postgres(), grid);

    const auto t0 = std::chrono::steady_clock::now();
    PospStats fresh_stats;
    GeneratePosp(space.query, new_cat, CostParams::Postgres(), grid,
                 PospOptions{}, &fresh_stats);
    const auto t1 = std::chrono::steady_clock::now();
    MaintenanceStats stats;
    MaintainDiagram(old_diag, space.query, new_cat, CostParams::Postgres(),
                    16, &stats);
    const auto t2 = std::chrono::steady_clock::now();
    const double fresh_secs = std::chrono::duration<double>(t1 - t0).count();
    const double maint_secs = std::chrono::duration<double>(t2 - t1).count();
    std::printf("  %-8.1f %-12lld %-12lld %-10d %-12.3f %.1fx\n", growth,
                fresh_stats.optimizer_calls, stats.optimizer_calls,
                stats.new_plans_adopted, stats.worst_validation_ratio,
                fresh_secs / maint_secs);
  }
}

void PrintDimElimination() {
  std::printf("\n-- (b) Weak-dimension elimination --\n");
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  std::printf("  %-12s %-40s\n", "space", "max relative cost impact per dim");
  for (const char* name : {"3D_H_Q5", "5D_H_Q7", "5D_DS_Q19"}) {
    const NamedSpace space = GetSpace(name, tpch, tpcds);
    const Catalog& cat = space.benchmark == "H" ? tpch : tpcds;
    const auto sens =
        MeasureDimSensitivity(space.query, cat, CostParams::Postgres());
    std::printf("  %-12s ", name);
    for (const auto& s : sens) std::printf("%.2g  ", s.max_relative_impact);
    std::printf("\n");
  }
  const NamedSpace q7 = GetSpace("5D_H_Q7", tpch, tpcds);
  std::vector<int> removed;
  const QuerySpec reduced = EliminateWeakDimensions(
      q7.query, tpch, CostParams::Postgres(), /*threshold=*/1.0, &removed);
  std::printf("  5D_H_Q7 at threshold 1.0: %d dims kept, %zu eliminated -> "
              "grid shrinks %llux\n",
              reduced.NumDims(), removed.size(),
              static_cast<unsigned long long>(
                  1ULL << (3 * removed.size())));  // 8 points/dim default
}

void PrintSeeding() {
  std::printf("\n-- (c) Underestimate-seeded execution --\n");
  auto p = BuildSpace("5D_DS_Q19");
  BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get());
  const EssGrid& grid = *p->grid;
  std::printf("  %-22s %-12s %-12s\n", "strategy", "avg execs", "ASO");
  double execs_un = 0, aso_un = 0, execs_half = 0, aso_half = 0,
         execs_full = 0, aso_full = 0;
  uint64_t count = 0;
  for (uint64_t qa = 0; qa < grid.num_points(); qa += 3) {
    const GridPoint qa_pt = grid.PointAt(qa);
    GridPoint half(qa_pt.size());
    for (size_t d = 0; d < half.size(); ++d) half[d] = qa_pt[d] / 2;
    const SimResult un = sim.RunOptimized(qa);
    const SimResult sh = sim.RunOptimizedSeeded(qa, half);
    const SimResult sf = sim.RunOptimizedSeeded(qa, qa_pt);
    execs_un += un.num_executions;
    aso_un += sim.SubOpt(un, qa);
    execs_half += sh.num_executions;
    aso_half += sim.SubOpt(sh, qa);
    execs_full += sf.num_executions;
    aso_full += sim.SubOpt(sf, qa);
    ++count;
  }
  std::printf("  %-22s %-12.2f %-12.2f\n", "origin (paper)",
              execs_un / count, aso_un / count);
  std::printf("  %-22s %-12.2f %-12.2f\n", "half-way underestimate",
              execs_half / count, aso_half / count);
  std::printf("  %-22s %-12.2f %-12.2f\n", "exact estimate",
              execs_full / count, aso_full / count);
  std::printf("  The better the (guaranteed-under) estimate, the cheaper "
              "the discovery; the guarantee never degrades.\n");
}

void PrintReproduction() {
  PrintHeader("Extensions: maintenance, dimension elimination, seeding",
              "Section 8 (future work items, implemented)");
  PrintMaintenance();
  PrintDimElimination();
  PrintSeeding();
}

void BM_MaintainDiagram(benchmark::State& state) {
  const Catalog old_cat = MakeTpchCatalog(1.0);
  const Catalog new_cat = MakeTpchCatalog(2.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace("3D_H_Q5", old_cat, tpcds);
  const EssGrid grid(space.query, {12, 12, 12});
  const PlanDiagram old_diag =
      GeneratePosp(space.query, old_cat, CostParams::Postgres(), grid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaintainDiagram(
        old_diag, space.query, new_cat, CostParams::Postgres(), 16));
  }
}
BENCHMARK(BM_MaintainDiagram)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Figure 15: average-case sub-optimality (ASO) of NAT, SEER and BOU across
// the ten benchmark error spaces — demonstrating that the bouquet's
// worst-case gains do not come at average-case expense.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace bouquet {
namespace {

using benchutil::AllSpaceNames;
using benchutil::BuildSpace;
using benchutil::PrintHeader;

void PrintReproduction() {
  PrintHeader("ASO performance: NAT vs SEER vs BOU (log scale)", "Figure 15");
  std::printf("\n  %-12s %-12s %-12s %-12s %-14s\n", "space", "NAT", "SEER",
              "BOU", "BOU-optimized");
  for (const auto& name : AllSpaceNames()) {
    auto p = BuildSpace(name);
    const RobustnessProfile nat = ComputeNativeProfile(*p->diagram,
                                                       p->opt.get());
    const SeerResult seer_red = SeerReduce(*p->diagram, p->opt.get(), 0.2);
    const RobustnessProfile seer =
        ComputeAssignmentProfile(*p->diagram, p->opt.get(), seer_red.plan_at);
    BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get());
    const BouquetProfile bou = ComputeBouquetProfile(sim, false);
    const BouquetProfile bou_opt = ComputeBouquetProfile(sim, true);
    std::printf("  %-12s %-12.3g %-12.3g %-12.3g %-14.3g\n", name.c_str(),
                nat.aso, seer.aso, bou.aso, bou_opt.aso);
  }
  std::printf("\n  Paper's shape: BOU ASO typically < 4 in absolute terms, "
              "comparable to or better than NAT.\n");
}

void BM_BouquetProfile3D(benchmark::State& state) {
  auto p = BuildSpace("3D_DS_Q96");
  BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeBouquetProfile(sim, false));
  }
}
BENCHMARK(BM_BouquetProfile3D);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Ablation: the two design knobs of the bouquet — the isocost common ratio r
// and the anorexic threshold lambda — and their effect on MSO, ASO, bouquet
// cardinality and the guarantee. The paper fixes r = 2 (optimal by Theorem
// 2) and lambda = 20% (the sweet spot of [15]); this bench shows why.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bouquet/bounds.h"

namespace bouquet {
namespace {

using benchutil::BuildSpace;
using benchutil::PrintHeader;

void PrintReproduction() {
  PrintHeader("Ablation: isocost ratio r and anorexic lambda",
              "design study (Sections 3.1, 3.3)");

  std::printf("\n  -- r sweep on 3D_DS_Q96 (lambda = 0.2) --\n");
  std::printf("  %-6s %-10s %-10s %-10s %-10s %-10s\n", "r", "contours",
              "|bouquet|", "rho", "MSO", "ASO");
  for (double r : {1.5, 2.0, 3.0, 4.0}) {
    BouquetParams params;
    params.ratio = r;
    auto p = BuildSpace("3D_DS_Q96", 0, CostParams::Postgres(), nullptr,
                        nullptr, params);
    BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get());
    const BouquetProfile prof = ComputeBouquetProfile(sim, false);
    std::printf("  %-6.1f %-10zu %-10d %-10d %-10.2f %-10.2f\n", r,
                p->bouquet->contours.size(), p->bouquet->cardinality(),
                p->bouquet->rho(), prof.mso, prof.aso);
  }

  std::printf("\n  -- lambda sweep on 4D_DS_Q26 (r = 2) --\n");
  std::printf("  %-8s %-10s %-10s %-12s %-10s %-10s\n", "lambda",
              "|bouquet|", "rho", "Eq.8 bound", "MSO", "ASO");
  for (double lambda : {0.0, 0.1, 0.2, 0.35, 0.5}) {
    BouquetParams params;
    params.lambda = lambda;
    auto p = BuildSpace("4D_DS_Q26", 0, CostParams::Postgres(), nullptr,
                        nullptr, params);
    BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get());
    const BouquetProfile prof = ComputeBouquetProfile(sim, false);
    std::printf("  %-8.2f %-10d %-10d %-12.1f %-10.2f %-10.2f\n", lambda,
                p->bouquet->cardinality(), p->bouquet->rho(),
                EquationEightBound(*p->bouquet), prof.mso, prof.aso);
  }
  std::printf("\n  Expected shape: r = 2 balances contour count against "
              "per-step overshoot;\n  growing lambda shrinks rho (better "
              "bound) while inflating per-execution slack.\n");
}

void BM_BuildBouquetLambdaZero(benchmark::State& state) {
  auto p = BuildSpace("3D_DS_Q96");
  BouquetParams params;
  params.lambda = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildBouquet(*p->diagram, p->opt.get(), params));
  }
}
BENCHMARK(BM_BuildBouquetLambdaZero);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Table 2: query workload specifications — join-graph geometry, relation
// count, and the cost spread Cmax/Cmin of each error space.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "query/join_graph.h"

namespace bouquet {
namespace {

using benchutil::AllSpaceNames;
using benchutil::BuildSpace;
using benchutil::PrintHeader;

void PrintReproduction() {
  PrintHeader("Query workload specifications", "Table 2");
  std::printf("\n  %-12s %-18s %-6s %-12s %-10s\n", "space", "join-graph",
              "dims", "Cmax/Cmin", "contours");
  for (const auto& name : AllSpaceNames()) {
    auto p = BuildSpace(name);
    const JoinGraph graph(p->query);
    std::printf("  %-12s %-7s(%zu)%8s %-6d %-12.0f %-10zu\n", name.c_str(),
                graph.Geometry().c_str(), p->query.tables.size(), "",
                p->query.NumDims(), p->diagram->Cmax() / p->diagram->Cmin(),
                p->bouquet->contours.size());
  }
  std::printf("\n  Paper's Table 2 reports Cmax/Cmin between 5 and 668 and "
              "<= 10 contours per space.\n");
}

void BM_ValidateSpaces(benchmark::State& state) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  for (auto _ : state) {
    for (const auto& s : BenchmarkSpaces(tpch, tpcds)) {
      benchmark::DoNotOptimize(
          s.query.Validate(s.benchmark == "H" ? tpch : tpcds));
    }
  }
}
BENCHMARK(BM_ValidateSpaces);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Figure 4: bouquet runtime performance profile on the 1D example query EQ,
// against the PIC (ideal) and the native optimizer's worst-case profile.
// Reports worst-case and average sub-optimality for the basic and optimized
// bouquet variants.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/str_util.h"

namespace bouquet {
namespace {

using benchutil::BuildSpace;
using benchutil::PrintHeader;

std::unique_ptr<benchutil::SpacePipeline> BuildEq() {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const QuerySpec eq = MakeEqQuery(tpch);
  return BuildSpace("EQ", /*resolution=*/100, CostParams::Postgres(), &eq,
                    &tpch);
}

void PrintReproduction() {
  auto p = BuildEq();
  const EssGrid& grid = *p->grid;
  const PlanDiagram& d = *p->diagram;

  PrintHeader("Bouquet performance profile on EQ (1D)", "Figure 4");

  QueryOptimizer* opt = p->opt.get();
  const RobustnessProfile nat = ComputeNativeProfile(d, opt);
  BouquetSimulator sim(*p->bouquet, d, opt);
  // "Basic" here uses restart accounting; "optimized" resumes consecutive
  // executions of the same plan (the paper's enhancement).
  SimOptions restart;
  restart.continue_same_plan = false;
  BouquetSimulator sim_restart(*p->bouquet, d, opt, restart);

  std::printf("\n  %-12s %-12s %-13s %-13s %-14s\n", "selectivity",
              "PIC (ideal)", "bouquet", "bouquet-opt", "native-worst");
  for (uint64_t i = 0; i < grid.num_points(); i += 7) {
    const SimResult basic = sim_restart.RunBasic(i);
    const SimResult cont = sim.RunBasic(i);
    std::printf("  %-12s %-12s %-13s %-13s %-14s\n",
                FormatPct(grid.axis(0)[i]).c_str(),
                FormatSci(d.cost_at(i)).c_str(),
                FormatSci(basic.total_cost).c_str(),
                FormatSci(cont.total_cost).c_str(),
                FormatSci(nat.subopt_worst[i] * d.cost_at(i)).c_str());
  }

  const BouquetProfile basic = ComputeBouquetProfile(sim_restart, false);
  const BouquetProfile cont = ComputeBouquetProfile(sim, false);
  std::printf("\n  %-28s %-12s %-12s\n", "strategy", "MSO", "ASO");
  std::printf("  %-28s %-12.2f %-12.2f\n", "native optimizer", nat.mso,
              nat.aso);
  std::printf("  %-28s %-12.2f %-12.2f\n", "bouquet (basic/restart)",
              basic.mso, basic.aso);
  std::printf("  %-28s %-12.2f %-12.2f\n", "bouquet (optimized/resume)",
              cont.mso, cont.aso);
  std::printf("\n  Paper reference points: bouquet 3.6/2.4, optimized "
              "3.1/1.7, native worst ~100.\n");
  std::printf("  Theorem 1 guarantee for the bouquet: MSO <= %.1f "
              "(x(1+lambda) = %.1f)\n",
              4.0, 4.0 * 1.2);
}

void BM_BouquetRun1D(benchmark::State& state) {
  static auto p = BuildEq();
  static BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get());
  uint64_t qa = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunBasic(qa));
    qa = (qa + 13) % p->grid->num_points();
  }
}
BENCHMARK(BM_BouquetRun1D);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Property-harness throughput: how many randomized instances/sec the fuzz
// gate sustains, split by pipeline stage (generation vs full oracle check),
// and how the cost scales with instance size. This calibrates the
// BOUQUET_FUZZ_ITERS budget for the nightly 10k-instance job.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "testing/generators.h"
#include "testing/harness.h"
#include "testing/oracles.h"

namespace bouquet {
namespace {

using benchutil::PrintHeader;

void PrintReproduction() {
  PrintHeader("Fuzz harness throughput: instances/sec through every oracle",
              "budget calibration for the scheduled 10k-instance gate");

  FuzzConfig config;
  config.iterations = 100;
  config.shrink = false;  // a throughput run should not pay for shrinking
  const auto t0 = std::chrono::steady_clock::now();
  const FuzzReport report = RunFuzz(config);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("\n  %s\n", report.Summary().c_str());
  std::printf("  wall %.2fs  =>  %.1f instances/s, %.0f grid points/s\n",
              wall, report.instances / wall,
              static_cast<double>(report.total_grid_points) / wall);
  std::printf("  projected 10k-instance nightly run: ~%.0fs\n",
              10000.0 * wall / report.instances);
}

void BM_GenerateFuzzInstance(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    const FuzzInstance inst = GenerateFuzzInstance(seed++);
    benchmark::DoNotOptimize(inst.query.error_dims.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenerateFuzzInstance)->Unit(benchmark::kMicrosecond);

// Full pipeline + every oracle on a fixed mid-size instance, with and
// without the differential brute-force re-optimization samples.
void BM_CheckInvariants(benchmark::State& state) {
  const FuzzInstance inst = GenerateFuzzInstance(42);
  OracleOptions opts;
  opts.differential_samples = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const InvariantReport report = CheckInvariants(inst, opts);
    benchmark::DoNotOptimize(report.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckInvariants)
    ->Arg(0)   // oracles only
    ->Arg(48)  // gate configuration
    ->Unit(benchmark::kMillisecond);

// End-to-end gate batches: amortized per-instance cost including the
// checksum/telemetry bookkeeping of RunFuzz itself.
void BM_FuzzBatch(benchmark::State& state) {
  FuzzConfig config;
  config.iterations = static_cast<int>(state.range(0));
  config.shrink = false;
  for (auto _ : state) {
    const FuzzReport report = RunFuzz(config);
    benchmark::DoNotOptimize(report.instance_checksum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FuzzBatch)->Arg(10)->Arg(25)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

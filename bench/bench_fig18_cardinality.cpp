// Figure 18: plan cardinalities of NAT (full POSP), SEER (globally-safe
// reduction) and BOU (contour-confined anorexic bouquet) — showing the
// bouquet size is effectively independent of the space's dimensionality.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ess/anorexic.h"

namespace bouquet {
namespace {

using benchutil::AllSpaceNames;
using benchutil::BuildSpace;
using benchutil::PrintHeader;

void PrintReproduction() {
  PrintHeader("Plan cardinalities (log scale)", "Figure 18");
  std::printf("\n  %-12s %-10s %-10s %-10s %-6s\n", "space", "POSP(NAT)",
              "SEER", "BOU", "rho");
  for (const auto& name : AllSpaceNames()) {
    auto p = BuildSpace(name);
    const SeerResult seer = SeerReduce(*p->diagram, p->opt.get(), 0.2);
    std::printf("  %-12s %-10d %-10d %-10d %-6d\n", name.c_str(),
                p->diagram->num_plans(), seer.plans_after,
                p->bouquet->cardinality(), p->bouquet->rho());
  }
  std::printf("\n  Paper's shape: POSP in the tens-hundreds, BOU ~10 or "
              "fewer even at 5D.\n");
}

void BM_AnorexicReduce4D(benchmark::State& state) {
  auto p = BuildSpace("4D_DS_Q26");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AnorexicReduce(*p->diagram, p->opt.get(), 0.2));
  }
}
BENCHMARK(BM_AnorexicReduce4D);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

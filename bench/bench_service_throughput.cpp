// Service-layer benchmark: parallel POSP compilation speedup and the
// concurrent serving throughput of BouquetService (requests/sec, cache hit
// rate, compile vs execute latency split) on a multi-D workload.
//
// This is infrastructure beyond the paper: Section 4.2's amortization
// argument ("canned" form-based queries) made operational — compile once
// per template, serve every binding from the cache.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <future>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"
#include "service/template_key.h"

namespace bouquet {
namespace {

using benchutil::PrintHeader;

constexpr int kPoolThreads = 8;

// Multi-D compile workload: 3D TPC-H space at default resolution (20^3).
QuerySpec CompileWorkloadQuery(const Catalog& tpch, const Catalog& tpcds) {
  return GetSpace("3D_H_Q5", tpch, tpcds).query;
}

void PrintReproduction() {
  PrintHeader("Concurrent bouquet service: compile speedup + throughput",
              "the Section 4.2 deployment model, beyond-paper scaling");
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const QuerySpec query = CompileWorkloadQuery(tpch, tpcds);
  const EssGrid grid = EssGrid::WithDefaultResolution(query);

  // --- Parallel POSP compilation: serial vs pool-sharded. ---------------
  PospStats serial_stats;
  GeneratePosp(query, tpch, CostParams::Postgres(), grid, PospOptions{},
               &serial_stats);
  ThreadPool pool(kPoolThreads);
  PospOptions par;
  par.pool = &pool;
  PospStats par_stats;
  GeneratePosp(query, tpch, CostParams::Postgres(), grid, par, &par_stats);
  const double speedup = par_stats.wall_seconds > 0.0
                             ? serial_stats.wall_seconds /
                                   par_stats.wall_seconds
                             : 0.0;
  std::printf("\n  POSP compilation of %s (%llu points)\n",
              query.name.c_str(),
              static_cast<unsigned long long>(grid.num_points()));
  std::printf("    serial:        %8.2fs   %lld DP calls, %lld recost "
              "hits, %lld memo hits\n",
              serial_stats.wall_seconds, serial_stats.dp_calls,
              serial_stats.recost_hits, serial_stats.memo_hits);
  std::printf("    pool (%d thr): %8.2fs   %lld DP calls, %lld recost "
              "hits   speedup %.2fx\n",
              kPoolThreads, par_stats.wall_seconds, par_stats.dp_calls,
              par_stats.recost_hits, speedup);

  // --- Serving throughput: repeated templates, concurrent requests. -----
  ServiceOptions opts;
  opts.num_threads = kPoolThreads;
  BouquetService service(tpch, opts);

  const int kTemplates = 2;
  const int kRequests = 256;
  std::vector<QuerySpec> templates;
  templates.push_back(query);
  {
    QuerySpec second = query;
    second.error_dims[0].lo *= 10.0;  // distinct ESS range => new template
    templates.push_back(second);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<Result<ServiceResult>>> futs;
  futs.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ServiceRequest req;
    req.query = templates[i % kTemplates];
    const int dims = req.query.NumDims();
    req.actual_selectivities.assign(dims, 0.0);
    for (int d = 0; d < dims; ++d) {
      req.actual_selectivities[d] =
          0.001 + 0.9 * ((i * 31 + d * 17) % 97) / 96.0;
    }
    futs.push_back(service.Submit(std::move(req)));
  }
  int completed = 0;
  double sum_subopt_cost = 0.0;
  for (auto& f : futs) {
    auto res = f.get();
    if (res.ok() && res->sim.completed) {
      ++completed;
      sum_subopt_cost += res->sim.total_cost;
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const ServiceStats s = service.stats();
  std::printf("\n  Served %d/%d requests (%d templates) in %.2fs  =>  "
              "%.1f req/s\n",
              completed, kRequests, kTemplates, wall, kRequests / wall);
  std::printf("    compilations:   %llu (single-flight dedup)\n",
              static_cast<unsigned long long>(s.compilations));
  std::printf("    cache hit rate: %.1f%%  (%llu hits, %llu misses, %llu "
              "shared waits)\n",
              100.0 * s.CacheHitRate(),
              static_cast<unsigned long long>(s.cache_hits),
              static_cast<unsigned long long>(s.cache_misses),
              static_cast<unsigned long long>(s.shared_compiles));
  std::printf("    time split:     compile %.2fs total, execute %.4fs "
              "total, mean latency %.2fms\n",
              s.compile_seconds, s.execute_seconds,
              1000.0 * s.latency_seconds / s.requests);
  // Cache-cold compile work vs cache-warm serving: every DP/recost below
  // happened inside the s.compilations cold compiles; the cache_hits warm
  // requests did zero POSP work.
  std::printf("    cold compiles:  %lld DP calls + %lld recost hits "
              "(%lld memo hits) across %llu compilations\n",
              s.posp_dp_calls, s.posp_recost_hits, s.posp_memo_hits,
              static_cast<unsigned long long>(s.compilations));
  std::printf("    audit:          %lld sampled re-derivations, %lld "
              "failures\n",
              s.posp_audit_checks, s.posp_audit_failures);
  std::printf("\n  Expected shape: one compilation per template, hit rate "
              "-> (M-1)/M, compile\n  speedup tracking the core count, and "
              "DP calls well below grid points per compile\n  (the "
              "incremental fast path serves the rest).\n");
}

// range(0) selects observability: 0 = off — detached sinks must cost only
// null checks, so this row is the tracer-off overhead budget (<= 2% vs. an
// uninstrumented build) — 1 = tracer + metrics attached, which pays for
// span allocation and is expected to be visibly slower on cached requests.
void BM_ServiceCachedRequest(benchmark::State& state) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  obs::Tracer tracer(1 << 14);
  obs::MetricsRegistry metrics;
  ServiceOptions opts;
  opts.num_threads = 4;
  if (state.range(0) > 0) {
    opts.tracer = &tracer;
    opts.metrics = &metrics;
  }
  BouquetService service(tpch, opts);
  QuerySpec query = MakeEqQuery(tpch);
  ServiceRequest warm;
  warm.query = query;
  warm.actual_selectivities = {0.1};
  benchmark::DoNotOptimize(service.Run(warm));  // populate the cache
  double s = 0.001;
  for (auto _ : state) {
    ServiceRequest req;
    req.query = query;
    s = s < 0.9 ? s * 1.7 : 0.001;
    req.actual_selectivities = {s};
    auto res = service.Run(req);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceCachedRequest)
    ->Arg(0)  // observability off
    ->Arg(1)  // tracer + metrics on
    ->Unit(benchmark::kMicrosecond);

void BM_PoolPospCompile3D(benchmark::State& state) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const QuerySpec query = CompileWorkloadQuery(tpch, tpcds);
  const EssGrid grid(query, {12, 12, 12});
  ThreadPool pool(static_cast<int>(state.range(0)));
  PospOptions opts;
  if (state.range(0) > 0) opts.pool = &pool;
  for (auto _ : state) {
    const PlanDiagram d =
        GeneratePosp(query, tpch, CostParams::Postgres(), grid, opts);
    benchmark::DoNotOptimize(d.num_plans());
  }
}
BENCHMARK(BM_PoolPospCompile3D)
    ->Arg(0)  // serial
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Service-layer benchmark: parallel POSP compilation speedup and the
// concurrent serving throughput of BouquetService (requests/sec, cache hit
// rate, compile vs execute latency split) on a multi-D workload.
//
// This is infrastructure beyond the paper: Section 4.2's amortization
// argument ("canned" form-based queries) made operational — compile once
// per template, serve every binding from the cache.

// `--serve-smoke [out.json]` instead runs the full src/net/ serving stack
// (epoll reactors + batching router + MSO-safe shedding) against a loopback
// open-loop client and writes BENCH_serve.json (QPS, p50/p99 latency,
// compile and batch counts, degraded/shed totals) for the
// scripts/check_serve_smoke.py CI gate.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"
#include "service/template_key.h"

namespace bouquet {
namespace {

using benchutil::PrintHeader;

constexpr int kPoolThreads = 8;

// Multi-D compile workload: 3D TPC-H space at default resolution (20^3).
QuerySpec CompileWorkloadQuery(const Catalog& tpch, const Catalog& tpcds) {
  return GetSpace("3D_H_Q5", tpch, tpcds).query;
}

void PrintReproduction() {
  PrintHeader("Concurrent bouquet service: compile speedup + throughput",
              "the Section 4.2 deployment model, beyond-paper scaling");
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const QuerySpec query = CompileWorkloadQuery(tpch, tpcds);
  const EssGrid grid = EssGrid::WithDefaultResolution(query);

  // --- Parallel POSP compilation: serial vs pool-sharded. ---------------
  PospStats serial_stats;
  GeneratePosp(query, tpch, CostParams::Postgres(), grid, PospOptions{},
               &serial_stats);
  ThreadPool pool(kPoolThreads);
  PospOptions par;
  par.pool = &pool;
  PospStats par_stats;
  GeneratePosp(query, tpch, CostParams::Postgres(), grid, par, &par_stats);
  const double speedup = par_stats.wall_seconds > 0.0
                             ? serial_stats.wall_seconds /
                                   par_stats.wall_seconds
                             : 0.0;
  std::printf("\n  POSP compilation of %s (%llu points)\n",
              query.name.c_str(),
              static_cast<unsigned long long>(grid.num_points()));
  std::printf("    serial:        %8.2fs   %lld DP calls, %lld recost "
              "hits, %lld memo hits\n",
              serial_stats.wall_seconds, serial_stats.dp_calls,
              serial_stats.recost_hits, serial_stats.memo_hits);
  std::printf("    pool (%d thr): %8.2fs   %lld DP calls, %lld recost "
              "hits   speedup %.2fx\n",
              kPoolThreads, par_stats.wall_seconds, par_stats.dp_calls,
              par_stats.recost_hits, speedup);

  // --- Serving throughput: repeated templates, concurrent requests. -----
  ServiceOptions opts;
  opts.num_threads = kPoolThreads;
  BouquetService service(tpch, opts);

  const int kTemplates = 2;
  const int kRequests = 256;
  std::vector<QuerySpec> templates;
  templates.push_back(query);
  {
    QuerySpec second = query;
    second.error_dims[0].lo *= 10.0;  // distinct ESS range => new template
    templates.push_back(second);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<Result<ServiceResult>>> futs;
  futs.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ServiceRequest req;
    req.query = templates[i % kTemplates];
    const int dims = req.query.NumDims();
    req.actual_selectivities.assign(dims, 0.0);
    for (int d = 0; d < dims; ++d) {
      req.actual_selectivities[d] =
          0.001 + 0.9 * ((i * 31 + d * 17) % 97) / 96.0;
    }
    futs.push_back(service.Submit(std::move(req)));
  }
  int completed = 0;
  double sum_subopt_cost = 0.0;
  for (auto& f : futs) {
    auto res = f.get();
    if (res.ok() && res->sim.completed) {
      ++completed;
      sum_subopt_cost += res->sim.total_cost;
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const ServiceStats s = service.stats();
  std::printf("\n  Served %d/%d requests (%d templates) in %.2fs  =>  "
              "%.1f req/s\n",
              completed, kRequests, kTemplates, wall, kRequests / wall);
  std::printf("    compilations:   %llu (single-flight dedup)\n",
              static_cast<unsigned long long>(s.compilations));
  std::printf("    cache hit rate: %.1f%%  (%llu hits, %llu misses, %llu "
              "shared waits)\n",
              100.0 * s.CacheHitRate(),
              static_cast<unsigned long long>(s.cache_hits),
              static_cast<unsigned long long>(s.cache_misses),
              static_cast<unsigned long long>(s.shared_compiles));
  std::printf("    time split:     compile %.2fs total, execute %.4fs "
              "total, mean latency %.2fms\n",
              s.compile_seconds, s.execute_seconds,
              1000.0 * s.latency_seconds / s.requests);
  // Cache-cold compile work vs cache-warm serving: every DP/recost below
  // happened inside the s.compilations cold compiles; the cache_hits warm
  // requests did zero POSP work.
  std::printf("    cold compiles:  %lld DP calls + %lld recost hits "
              "(%lld memo hits) across %llu compilations\n",
              s.posp_dp_calls, s.posp_recost_hits, s.posp_memo_hits,
              static_cast<unsigned long long>(s.compilations));
  std::printf("    audit:          %lld sampled re-derivations, %lld "
              "failures\n",
              s.posp_audit_checks, s.posp_audit_failures);
  std::printf("    concurrency:    peak %llu in-flight requests (%llu now), "
              "pool queue depth %llu, %llu sheds\n",
              static_cast<unsigned long long>(s.peak_inflight_requests),
              static_cast<unsigned long long>(s.inflight_requests),
              static_cast<unsigned long long>(s.queue_depth),
              static_cast<unsigned long long>(s.sheds));
  std::printf("\n  Expected shape: one compilation per template, hit rate "
              "-> (M-1)/M, compile\n  speedup tracking the core count, and "
              "DP calls well below grid points per compile\n  (the "
              "incremental fast path serves the rest).\n");
}

// range(0) selects observability: 0 = off — detached sinks must cost only
// null checks, so this row is the tracer-off overhead budget (<= 2% vs. an
// uninstrumented build) — 1 = tracer + metrics attached, which pays for
// span allocation and is expected to be visibly slower on cached requests.
void BM_ServiceCachedRequest(benchmark::State& state) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  obs::Tracer tracer(1 << 14);
  obs::MetricsRegistry metrics;
  ServiceOptions opts;
  opts.num_threads = 4;
  if (state.range(0) > 0) {
    opts.tracer = &tracer;
    opts.metrics = &metrics;
  }
  BouquetService service(tpch, opts);
  QuerySpec query = MakeEqQuery(tpch);
  ServiceRequest warm;
  warm.query = query;
  warm.actual_selectivities = {0.1};
  benchmark::DoNotOptimize(service.Run(warm));  // populate the cache
  double s = 0.001;
  for (auto _ : state) {
    ServiceRequest req;
    req.query = query;
    s = s < 0.9 ? s * 1.7 : 0.001;
    req.actual_selectivities = {s};
    auto res = service.Run(req);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceCachedRequest)
    ->Arg(0)  // observability off
    ->Arg(1)  // tracer + metrics on
    ->Unit(benchmark::kMicrosecond);

void BM_PoolPospCompile3D(benchmark::State& state) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const QuerySpec query = CompileWorkloadQuery(tpch, tpcds);
  const EssGrid grid(query, {12, 12, 12});
  ThreadPool pool(static_cast<int>(state.range(0)));
  PospOptions opts;
  if (state.range(0) > 0) opts.pool = &pool;
  for (auto _ : state) {
    const PlanDiagram d =
        GeneratePosp(query, tpch, CostParams::Postgres(), grid, opts);
    benchmark::DoNotOptimize(d.num_plans());
  }
}
BENCHMARK(BM_PoolPospCompile3D)
    ->Arg(0)  // serial
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --serve-smoke: loopback open-loop load over the real wire protocol.
// ---------------------------------------------------------------------------

struct ServePhaseResult {
  int requests = 0;
  int completed = 0;
  int degraded = 0;
  int errors = 0;
  double wall_seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double Percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const size_t idx = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ms.size())));
  return sorted_ms[idx];
}

// Pipelines `n` QUERY frames for `query` at the server, then collects the
// `n` responses, measuring per-request latency from send to receive.
bool RunOpenLoopBurst(net::BlockingClient& client, const QuerySpec& query,
                      int n, uint64_t id_base, ServePhaseResult* out) {
  std::unordered_map<uint64_t, std::chrono::steady_clock::time_point> sent;
  sent.reserve(static_cast<size_t>(n));
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    net::QueryMsg q;
    q.request_id = id_base + static_cast<uint64_t>(i);
    q.tenant_id = static_cast<uint32_t>(i % 4);
    q.template_name = query.name;
    const int dims = query.NumDims();
    q.selectivities.assign(static_cast<size_t>(dims), 0.0);
    for (int d = 0; d < dims; ++d) {
      q.selectivities[static_cast<size_t>(d)] =
          0.001 + 0.9 * ((i * 31 + d * 17) % 97) / 96.0;
    }
    sent[q.request_id] = std::chrono::steady_clock::now();
    if (!client.SendFrame(net::EncodeQuery(q)).ok()) return false;
  }
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto frame_or = client.RecvFrame();
    if (!frame_or.ok()) return false;
    const auto now = std::chrono::steady_clock::now();
    uint64_t request_id = 0;
    if (static_cast<net::FrameType>(frame_or.value().type) ==
        net::FrameType::kError) {
      ++out->errors;
      net::ErrorMsg e;
      if (net::DecodeError(frame_or.value(), &e).ok()) request_id = e.request_id;
    } else {
      net::ResultMsg r;
      if (!net::DecodeResult(frame_or.value(), &r).ok()) return false;
      request_id = r.request_id;
      if ((r.flags & net::kResultCompleted) != 0) ++out->completed;
      if ((r.flags & net::kResultDegraded) != 0) ++out->degraded;
    }
    const auto it = sent.find(request_id);
    if (it != sent.end()) {
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(now - it->second)
              .count());
    }
  }
  out->requests = n;
  out->wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  out->p50_ms = Percentile(latencies_ms, 0.50);
  out->p99_ms = Percentile(latencies_ms, 0.99);
  return true;
}

// Two phases against one shared (warm-cached) service:
//   serve:    generous queue bound -> pure throughput + batching shape;
//   overload: tiny queue bound, slow batch window -> forced DEGRADED sheds
//             with queue depth provably bounded.
int RunServeSmoke(const char* out_path) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  obs::Tracer tracer(1 << 15);
  obs::MetricsRegistry metrics;
  ServiceOptions sopts;
  sopts.num_threads = kPoolThreads;
  sopts.grid_resolution = 24;
  sopts.min_shard_points = 1;
  sopts.tracer = &tracer;
  sopts.metrics = &metrics;
  BouquetService service(tpch, sopts);
  const QuerySpec query = MakeEqQuery(tpch);

  const int kServeRequests = 2000;
  ServePhaseResult serve;
  net::RouterStats serve_router;
  {
    net::ServerOptions nopts;
    nopts.num_reactors = 2;
    nopts.router.batch_window_ms = 1.0;
    nopts.router.max_batch = 32;
    nopts.router.max_queue_depth = 4096;
    nopts.router.max_inflight_batches = 8;
    nopts.tracer = &tracer;
    nopts.metrics = &metrics;
    net::BouquetServer server(&service, nopts);
    if (!server.RegisterTemplate(query).ok() || !server.Start().ok()) {
      std::fprintf(stderr, "serve-smoke: server start failed\n");
      return 1;
    }
    auto client_or = net::BlockingClient::Connect(server.port());
    if (!client_or.ok()) return 1;
    net::BlockingClient client = std::move(client_or).value();
    if (!client.Hello().ok()) return 1;
    // Warm the template cache synchronously so the burst measures serving,
    // not the one-time compile (which the JSON still reports).
    net::QueryMsg warm;
    warm.request_id = 1;
    warm.template_name = query.name;
    warm.selectivities = {0.1};
    auto warm_or = client.Query(warm);
    if (!warm_or.ok() || !warm_or->ok) {
      std::fprintf(stderr, "serve-smoke: warm query failed\n");
      return 1;
    }
    if (!RunOpenLoopBurst(client, query, kServeRequests, 1000, &serve)) {
      std::fprintf(stderr, "serve-smoke: burst failed\n");
      return 1;
    }
    serve_router = server.router().stats();
    (void)client.ShutdownServer();
    server.Wait();
  }
  const ServiceStats after_serve = service.stats();

  const int kOverloadRequests = 400;
  const int kOverloadQueueBound = 8;
  ServePhaseResult overload;
  net::RouterStats overload_router;
  {
    net::ServerOptions nopts;
    nopts.num_reactors = 1;
    nopts.router.batch_window_ms = 20.0;  // slow consumer: force backlog
    nopts.router.max_batch = 8;
    nopts.router.max_queue_depth = kOverloadQueueBound;
    nopts.router.max_inflight_batches = 1;
    nopts.tracer = &tracer;
    nopts.metrics = &metrics;
    net::BouquetServer server(&service, nopts);
    if (!server.RegisterTemplate(query).ok() || !server.Start().ok()) {
      std::fprintf(stderr, "serve-smoke: overload server start failed\n");
      return 1;
    }
    auto client_or = net::BlockingClient::Connect(server.port());
    if (!client_or.ok()) return 1;
    net::BlockingClient client = std::move(client_or).value();
    if (!client.Hello().ok()) return 1;
    if (!RunOpenLoopBurst(client, query, kOverloadRequests, 500000,
                          &overload)) {
      std::fprintf(stderr, "serve-smoke: overload burst failed\n");
      return 1;
    }
    overload_router = server.router().stats();
    (void)client.ShutdownServer();
    server.Wait();
  }
  const ServiceStats after_overload = service.stats();

  const double qps =
      serve.wall_seconds > 0.0 ? serve.requests / serve.wall_seconds : 0.0;
  const double mean_batch =
      after_serve.batches > 0
          ? static_cast<double>(after_serve.batch_requests) /
                static_cast<double>(after_serve.batches)
          : 0.0;

  std::printf("serve-smoke: %d req in %.2fs => %.1f req/s  p50 %.2fms  "
              "p99 %.2fms  %llu compilations  %llu batches (mean %.1f)\n",
              serve.requests, serve.wall_seconds, qps, serve.p50_ms,
              serve.p99_ms,
              static_cast<unsigned long long>(after_serve.compilations),
              static_cast<unsigned long long>(after_serve.batches),
              mean_batch);
  std::printf("overload:    %d req -> %d completed, %d degraded (shed "
              "%llu), peak queue %llu (bound %d)\n",
              overload.requests, overload.completed, overload.degraded,
              static_cast<unsigned long long>(overload_router.shed),
              static_cast<unsigned long long>(
                  overload_router.peak_queue_depth),
              kOverloadQueueBound);

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "serve-smoke: cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"serve\": {\n");
  std::fprintf(f, "    \"requests\": %d,\n", serve.requests);
  std::fprintf(f, "    \"completed\": %d,\n", serve.completed);
  std::fprintf(f, "    \"degraded\": %d,\n", serve.degraded);
  std::fprintf(f, "    \"errors\": %d,\n", serve.errors);
  std::fprintf(f, "    \"wall_seconds\": %.6f,\n", serve.wall_seconds);
  std::fprintf(f, "    \"qps\": %.2f,\n", qps);
  std::fprintf(f, "    \"p50_ms\": %.4f,\n", serve.p50_ms);
  std::fprintf(f, "    \"p99_ms\": %.4f,\n", serve.p99_ms);
  std::fprintf(f, "    \"compilations\": %llu,\n",
               static_cast<unsigned long long>(after_serve.compilations));
  std::fprintf(f, "    \"batches\": %llu,\n",
               static_cast<unsigned long long>(after_serve.batches));
  std::fprintf(f, "    \"mean_batch_size\": %.3f,\n", mean_batch);
  std::fprintf(f, "    \"throttled\": %llu,\n",
               static_cast<unsigned long long>(serve_router.throttled));
  std::fprintf(f, "    \"peak_inflight_requests\": %llu\n",
               static_cast<unsigned long long>(
                   after_serve.peak_inflight_requests));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"overload\": {\n");
  std::fprintf(f, "    \"requests\": %d,\n", overload.requests);
  std::fprintf(f, "    \"completed\": %d,\n", overload.completed);
  std::fprintf(f, "    \"degraded\": %d,\n", overload.degraded);
  std::fprintf(f, "    \"errors\": %d,\n", overload.errors);
  std::fprintf(f, "    \"shed\": %llu,\n",
               static_cast<unsigned long long>(overload_router.shed));
  std::fprintf(f, "    \"service_sheds\": %llu,\n",
               static_cast<unsigned long long>(after_overload.sheds));
  std::fprintf(f, "    \"peak_queue_depth\": %llu,\n",
               static_cast<unsigned long long>(
                   overload_router.peak_queue_depth));
  std::fprintf(f, "    \"max_queue_depth\": %d,\n", kOverloadQueueBound);
  std::fprintf(f, "    \"compilations\": %llu\n",
               static_cast<unsigned long long>(after_overload.compilations));
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("serve-smoke: wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve-smoke") == 0) {
      const char* out =
          i + 1 < argc ? argv[i + 1] : "BENCH_serve.json";
      return bouquet::RunServeSmoke(out);
    }
  }
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Figure 17: MaxHarm — how much worse than the native optimizer's own worst
// case each strategy can get at unlucky locations, plus how rare harm is.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace bouquet {
namespace {

using benchutil::AllSpaceNames;
using benchutil::BuildSpace;
using benchutil::PrintHeader;

void PrintReproduction() {
  PrintHeader("MaxHarm performance (linear scale)", "Figure 17");
  std::printf("\n  %-12s %-10s %-10s %-16s\n", "space", "SEER MH", "BOU MH",
              "BOU harm-frac");
  for (const auto& name : AllSpaceNames()) {
    auto p = BuildSpace(name);
    const RobustnessProfile nat =
        ComputeNativeProfile(*p->diagram, p->opt.get());
    const SeerResult seer_red = SeerReduce(*p->diagram, p->opt.get(), 0.2);
    const RobustnessProfile seer =
        ComputeAssignmentProfile(*p->diagram, p->opt.get(), seer_red.plan_at);
    BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get());
    const BouquetProfile bou = ComputeBouquetProfile(sim, false);
    std::printf("  %-12s %-10.2f %-10.2f %13.2f%%\n", name.c_str(),
                MaxHarm(seer.subopt_worst, nat.subopt_worst),
                MaxHarm(bou.subopt, nat.subopt_worst),
                HarmFraction(bou.subopt, nat.subopt_worst) * 100);
  }
  std::printf("\n  Paper's shape: SEER MH <= lambda (0.2); BOU MH up to ~4 "
              "but harm hits <1%% of locations.\n");
}

void BM_SeerReduce3D(benchmark::State& state) {
  auto p = BuildSpace("3D_H_Q5");
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeerReduce(*p->diagram, p->opt.get(), 0.2));
  }
}
BENCHMARK(BM_SeerReduce3D);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Disk-backed storage benchmark: charged-cost effect of the buffer pool on
// re-scan-heavy bouquet workloads, eviction-policy comparison, and the
// scalar-vs-batch parity + accounting gates over paged data.
//
// The dataset is the seeded on-disk star schema from storage/dataset.h
// (written once into --data-dir, ~4 MB, dozens of times the pool size), so
// every number here is a pure function of the seed. Workloads:
//
//   reexec   — the bouquet re-execution pattern: an isocost-style ladder of
//              widening index-range scans over the fact table, the whole
//              ladder run twice to completion. The ladder's distinct pages
//              fit the pool, so with a cache the re-reads become priced
//              buffer hits; with EvictionPolicyKind::kNone every access
//              pays the full page cost. Gated: charged(nocache)/charged(LRU)
//              and charged(nocache)/charged(2Q) are both >= 3x.
//   scan_mix — the 2Q scan-resistance scenario: a pinned-down hot range
//              (promoted into Am via a one-shot ghost-priming burst) is
//              re-read between full sequential scans of a dimension table
//              larger than the pool. LRU flushes the hot set on every scan;
//              2Q keeps it in Am. Gated: charged(LRU)/charged(2Q) floor.
//   parity   — the reexec ladder run under both engines on the 2Q pool:
//              charged cost must be bit-equal, and each engine's charged
//              page reads/hits must equal the buffer manager's miss/hit
//              counters exactly (the accounting the I/O-charged MSO rests
//              on).
//
// Charged costs are deterministic, so the CI gates
// (scripts/check_storage_smoke.py over BENCH_storage.json) are exact ratio
// floors, immune to machine noise; wall times are printed for context only.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "executor/batch.h"
#include "executor/builder.h"
#include "storage/dataset.h"
#include "storage/index.h"
#include "storage/paged_table.h"

namespace bouquet {
namespace {

constexpr size_t kPoolPages = 32;

storage::DatasetSpec BenchSpec() {
  storage::DatasetSpec spec;
  spec.num_tables = 2;
  spec.rows_per_table = 8192;
  // Wide rows (few per page) keep page I/O dominant over per-tuple CPU in
  // the charged cost, as it is for the paper's disk-resident workloads.
  spec.data_columns = 62;
  spec.dim_rows = 1440;  // dim1 spans ~3x the pool: a flushing scan
  return spec;
}

/// One policy's view of the on-disk dataset: its own pool + catalog +
/// pre-built indexes, so measured runs charge data-page I/O only.
struct Session {
  std::unique_ptr<storage::StorageManager> sm;
  Database db;
  Catalog catalog;
  QuerySpec query;
  std::unique_ptr<CostModel> cm;
  int rpp = 1;              ///< fact rows per page
  int64_t fact_rows = 0;
  uint32_t fact_pages = 0;
  uint32_t dim_pages = 0;

  ExecContext MakeContext(int batch_size) {
    ExecContext ctx;
    ctx.query = &query;
    ctx.catalog = &catalog;
    ctx.db = &db;
    ctx.cost_model = cm.get();
    ctx.batch_size = batch_size;
    return ctx;
  }
};

Session OpenSession(const std::string& data_dir,
                    storage::EvictionPolicyKind policy) {
  Session s;
  s.sm = std::make_unique<storage::StorageManager>(
      storage::StorageOptions{data_dir, kPoolPages, policy});
  for (const std::string& name : storage::DatasetTableNames(BenchSpec())) {
    auto opened = s.sm->OpenTable(name);
    if (!opened.ok()) {
      std::fprintf(stderr, "open %s: %s\n", name.c_str(),
                   opened.status().ToString().c_str());
      std::exit(1);
    }
  }
  s.db.AttachStorage(s.sm.get());
  s.db.SyncCatalog(&s.catalog);
  const storage::PagedTable* fact = s.db.paged("fact");
  const storage::PagedTable* dim = s.db.paged("dim1");
  s.rpp = fact->rows_per_page();
  s.fact_rows = fact->num_rows();
  s.fact_pages = fact->num_data_pages();
  s.dim_pages = dim->num_data_pages();

  s.query.name = "storage_bench";
  s.query.tables = {"fact", "dim1"};
  s.query.joins = {JoinPredicate{"fact", "fk1", "dim1", "pk", -1.0}};
  s.query.filters = {
      SelectionPredicate{"fact", "pk", CompareOp::kLess, 1, -1.0},
      SelectionPredicate{"fact", "pk", CompareOp::kGreaterEqual, 1, -1.0}};
  const Status valid = s.query.Validate(s.catalog);
  if (!valid.ok()) {
    std::fprintf(stderr, "query: %s\n", valid.ToString().c_str());
    std::exit(1);
  }
  s.cm = std::make_unique<CostModel>(CostParams::Postgres());
  // Pre-build the pk index: maintenance streams are unaccounted, but they
  // should not show up in the wall times either.
  s.db.sorted_index("fact", 0);
  return s;
}

PlanNodeRef IndexRangeScan(int table_idx, int filter_idx) {
  auto n = std::make_shared<PlanNode>();
  n->op = OpType::kIndexScan;
  n->table_idx = table_idx;
  n->filter_idxs = {filter_idx};
  n->index_filter = filter_idx;
  return n;
}

PlanNodeRef SeqScan(int table_idx) {
  auto n = std::make_shared<PlanNode>();
  n->op = OpType::kSeqScan;
  n->table_idx = table_idx;
  return n;
}

struct Totals {
  double charged = 0.0;
  int64_t rows = 0;
  int64_t page_reads = 0;  ///< charged misses
  int64_t page_hits = 0;   ///< charged buffer hits
  double seconds = 0.0;
};

void Accumulate(Totals* t, const ExecutionOutcome& out) {
  t->charged += out.cost_charged;
  t->rows += out.rows_emitted;
  t->page_reads += out.page_reads;
  t->page_hits += out.page_hits;
}

/// The bouquet re-execution ladder: 8 widening pk ranges (4, 7, ..., 25
/// pages), the whole ladder twice, every execution to completion.
Totals RunReexec(Session* s, ExecEngine engine) {
  s->sm->buffer()->ResetForTest();
  const PlanNodeRef plan = IndexRangeScan(0, 0);
  Totals t;
  const auto t0 = std::chrono::steady_clock::now();
  for (int pass = 0; pass < 2; ++pass) {
    for (int k = 1; k <= 8; ++k) {
      s->query.filters[0].constant = static_cast<int64_t>(3 * k + 1) * s->rpp;
      ExecContext ctx = s->MakeContext(1024);
      const ExecutionOutcome out = ExecutePlanWith(
          engine, *plan, &ctx, std::numeric_limits<double>::infinity(),
          nullptr);
      Accumulate(&t, out);
    }
  }
  t.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return t;
}

/// Hot 12-page range re-read between full scans of a dimension table ~3x
/// the pool. The one-shot burst after the first hot read demotes the hot
/// pages into 2Q's ghost queue while they are still young, so the second
/// hot read promotes them into Am, out of the sequential flood's reach.
Totals RunScanMix(Session* s, ExecEngine engine) {
  s->sm->buffer()->ResetForTest();
  const PlanNodeRef hot = IndexRangeScan(0, 0);
  const PlanNodeRef burst = IndexRangeScan(0, 1);
  const PlanNodeRef dim_scan = SeqScan(1);
  s->query.filters[0].constant = static_cast<int64_t>(12) * s->rpp;
  s->query.filters[1].constant =
      s->fact_rows - static_cast<int64_t>(34) * s->rpp + 1;
  Totals t;
  const double inf = std::numeric_limits<double>::infinity();
  const auto t0 = std::chrono::steady_clock::now();
  auto run = [&](const PlanNode& plan) {
    ExecContext ctx = s->MakeContext(1024);
    Accumulate(&t, ExecutePlanWith(engine, plan, &ctx, inf, nullptr));
  };
  run(*hot);
  run(*burst);
  for (int round = 0; round < 8; ++round) {
    run(*hot);
    run(*dim_scan);
  }
  t.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return t;
}

struct BenchReport {
  // reexec, per policy.
  Totals re_none, re_lru, re_2q;
  double ratio_lru = 0.0;  ///< charged(nocache) / charged(LRU)
  double ratio_2q = 0.0;   ///< charged(nocache) / charged(2Q)
  // scan_mix.
  Totals mix_lru, mix_2q;
  double lru_over_2q = 0.0;
  // parity (2Q pool, reexec ladder).
  bool charged_bit_equal = false;
  bool rows_equal = false;
  bool accounting_exact = false;
  // dataset shape.
  uint32_t dataset_pages = 0;
  int64_t reexec_rows = 0;
};

BenchReport RunAll(const std::string& data_dir) {
  BenchReport r;
  {
    Session none = OpenSession(data_dir, storage::EvictionPolicyKind::kNone);
    r.dataset_pages = none.fact_pages + none.dim_pages;
    r.re_none = RunReexec(&none, ExecEngine::kScalar);
  }
  Session lru = OpenSession(data_dir, storage::EvictionPolicyKind::kLru);
  r.re_lru = RunReexec(&lru, ExecEngine::kScalar);
  r.mix_lru = RunScanMix(&lru, ExecEngine::kScalar);
  Session twoq = OpenSession(data_dir, storage::EvictionPolicyKind::k2Q);
  r.re_2q = RunReexec(&twoq, ExecEngine::kScalar);
  r.mix_2q = RunScanMix(&twoq, ExecEngine::kScalar);
  r.ratio_lru = r.re_none.charged / r.re_lru.charged;
  r.ratio_2q = r.re_none.charged / r.re_2q.charged;
  r.lru_over_2q = r.mix_lru.charged / r.mix_2q.charged;
  r.reexec_rows = r.re_2q.rows;

  // Parity + accounting: the same ladder, scalar vs batch, each from a cold
  // 2Q pool. `charged` equality is bit-exact (==, not a tolerance).
  const Totals scalar = RunReexec(&twoq, ExecEngine::kScalar);
  const storage::BufferStats ss = twoq.sm->buffer()->stats();
  const bool scalar_exact =
      ss.misses == static_cast<uint64_t>(scalar.page_reads) &&
      ss.hits == static_cast<uint64_t>(scalar.page_hits);
  const Totals batch = RunReexec(&twoq, ExecEngine::kBatch);
  const storage::BufferStats bs = twoq.sm->buffer()->stats();
  const bool batch_exact =
      bs.misses == static_cast<uint64_t>(batch.page_reads) &&
      bs.hits == static_cast<uint64_t>(batch.page_hits);
  r.charged_bit_equal = scalar.charged == batch.charged;
  r.rows_equal = scalar.rows == batch.rows;
  r.accounting_exact = scalar_exact && batch_exact;
  return r;
}

void PrintTotals(const char* name, const Totals& t) {
  std::printf("  %-8s charged %10.1f   page reads %6lld   hits %6lld   "
              "%7.2f ms\n",
              name, t.charged, static_cast<long long>(t.page_reads),
              static_cast<long long>(t.page_hits), t.seconds * 1e3);
}

void PrintReport(const BenchReport& r) {
  std::printf("Disk-backed storage: buffer pool effect on charged cost\n");
  std::printf("(pool %zu pages; dataset %u pages = %.1fx pool)\n\n",
              kPoolPages, r.dataset_pages,
              static_cast<double>(r.dataset_pages) / kPoolPages);
  std::printf("reexec ladder (2 passes x 8 widening index ranges):\n");
  PrintTotals("nocache", r.re_none);
  PrintTotals("lru", r.re_lru);
  PrintTotals("2q", r.re_2q);
  std::printf("  charged ratio nocache/lru %.2fx, nocache/2q %.2fx\n\n",
              r.ratio_lru, r.ratio_2q);
  std::printf("scan_mix (hot 12-page range between full dim scans):\n");
  PrintTotals("lru", r.mix_lru);
  PrintTotals("2q", r.mix_2q);
  std::printf("  charged ratio lru/2q %.2fx (2Q scan resistance)\n\n",
              r.lru_over_2q);
  std::printf("parity (reexec, scalar vs batch on the 2Q pool):\n");
  std::printf("  charged %s, rows %s, accounting %s\n",
              r.charged_bit_equal ? "bit-equal" : "DIVERGED",
              r.rows_equal ? "equal" : "DIVERGED",
              r.accounting_exact ? "exact" : "DRIFTED");
}

int WriteSmokeJson(const BenchReport& r, const char* out_path) {
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"pool_pages\": %zu,\n", kPoolPages);
  std::fprintf(f, "  \"dataset_pages\": %u,\n", r.dataset_pages);
  std::fprintf(f, "  \"reexec\": {\n");
  std::fprintf(f, "    \"rows_emitted\": %lld,\n",
               static_cast<long long>(r.reexec_rows));
  std::fprintf(f, "    \"charged_nocache\": %.6f,\n", r.re_none.charged);
  std::fprintf(f, "    \"charged_lru\": %.6f,\n", r.re_lru.charged);
  std::fprintf(f, "    \"charged_2q\": %.6f,\n", r.re_2q.charged);
  std::fprintf(f, "    \"ratio_lru\": %.3f,\n", r.ratio_lru);
  std::fprintf(f, "    \"ratio_2q\": %.3f\n", r.ratio_2q);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"scan_mix\": {\n");
  std::fprintf(f, "    \"charged_lru\": %.6f,\n", r.mix_lru.charged);
  std::fprintf(f, "    \"charged_2q\": %.6f,\n", r.mix_2q.charged);
  std::fprintf(f, "    \"lru_over_2q\": %.3f\n", r.lru_over_2q);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"parity\": {\n");
  std::fprintf(f, "    \"charged_bit_equal\": %s,\n",
               r.charged_bit_equal ? "true" : "false");
  std::fprintf(f, "    \"rows_equal\": %s,\n",
               r.rows_equal ? "true" : "false");
  std::fprintf(f, "    \"accounting_exact\": %s\n",
               r.accounting_exact ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("storage-smoke: wrote %s\n", out_path);
  return 0;
}

int Run(const std::string& data_dir, bool smoke, const char* out_path) {
  const Status written = storage::WriteOnDiskDataset(data_dir, BenchSpec());
  if (!written.ok()) {
    std::fprintf(stderr, "dataset: %s\n", written.ToString().c_str());
    return 1;
  }
  const BenchReport r = RunAll(data_dir);
  PrintReport(r);
  if (smoke) return WriteSmokeJson(r, out_path);
  return 0;
}

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  std::string data_dir = "/tmp/bouquet_bench_storage";
  bool smoke = false;
  const char* out_path = "BENCH_storage.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    }
  }
  return bouquet::Run(data_dir, smoke, out_path);
}

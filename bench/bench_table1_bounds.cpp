// Table 1: MSO guarantees under the raw-POSP configuration versus the
// anorexic-reduced configuration (lambda = 20%) for the ten error spaces.
// Bounds follow Equation 8 with the actual per-contour plan counts.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bouquet/bounds.h"

namespace bouquet {
namespace {

using benchutil::AllSpaceNames;
using benchutil::BuildSpace;
using benchutil::PrintHeader;

void PrintReproduction() {
  PrintHeader("Performance guarantees: POSP vs anorexic reduction",
              "Table 1");
  std::printf("\n  %-12s %-10s %-12s %-12s %-12s\n", "space", "rho_POSP",
              "MSO bound", "rho_ANRX", "MSO bound");
  for (const auto& name : AllSpaceNames()) {
    BouquetParams raw;
    raw.anorexic = false;
    auto p_raw = BuildSpace(name, 0, CostParams::Postgres(), nullptr,
                            nullptr, raw);
    auto p_anx = BuildSpace(name);
    std::printf("  %-12s %-10d %-12.1f %-12d %-12.1f\n", name.c_str(),
                p_raw->bouquet->rho(), EquationEightBound(*p_raw->bouquet),
                p_anx->bouquet->rho(), EquationEightBound(*p_anx->bouquet));
  }
  std::printf("\n  Paper's shape: anorexic reduction cuts rho by 3-20x and "
              "the bound by up to an order of magnitude\n"
              "  (e.g. 5D_DS_Q19: 379 -> 30.4 in the paper).\n");
}

void BM_BuildBouquet3D(benchmark::State& state) {
  auto p = BuildSpace("3D_H_Q5");
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildBouquet(*p->diagram, p->opt.get()));
  }
}
BENCHMARK(BM_BuildBouquet3D);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

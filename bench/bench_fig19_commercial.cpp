// Figure 19 / Section 6.8: the commercial engine ("COM") evaluation.
// Selection-dimension queries 3D_H_Q5b and 4D_H_Q8b are run under the
// Commercial cost-model configuration — selectivities on base-relation
// predicates can be dialed purely through query constants, which is how the
// paper sidestepped COM's lack of a selectivity-injection API.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace bouquet {
namespace {

using benchutil::BuildSpace;
using benchutil::PrintHeader;

void PrintOneSpace(const QuerySpec& query, const Catalog& catalog) {
  auto p = BuildSpace(query.name, 0, CostParams::Commercial(), &query,
                      &catalog);
  const RobustnessProfile nat =
      ComputeNativeProfile(*p->diagram, p->opt.get());
  const SeerResult seer_red = SeerReduce(*p->diagram, p->opt.get(), 0.2);
  const RobustnessProfile seer =
      ComputeAssignmentProfile(*p->diagram, p->opt.get(), seer_red.plan_at);
  BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get());
  const BouquetProfile bou = ComputeBouquetProfile(sim, false);
  const auto dist = EnhancementDistribution(bou.subopt, nat.subopt_worst, 3);

  std::printf("\n  -- %s on COM --\n", query.name.c_str());
  std::printf("  %-10s %-12s %-12s %-12s\n", "", "NAT", "SEER", "BOU");
  std::printf("  %-10s %-12.3g %-12.3g %-12.3g\n", "MSO", nat.mso, seer.mso,
              bou.mso);
  std::printf("  %-10s %-12.3g %-12.3g %-12.3g\n", "ASO", nat.aso, seer.aso,
              bou.aso);
  std::printf("  %-10s %-12d %-12d %-12d\n", "plans", nat.num_plans,
              seer_red.plans_after, p->bouquet->cardinality());
  std::printf("  BOU MaxHarm: %.2f  |  locations improved >= 10x: %.1f%%\n",
              MaxHarm(bou.subopt, nat.subopt_worst),
              (dist[2]) * 100);
}

void PrintReproduction() {
  PrintHeader("Commercial engine performance (COM cost model)",
              "Figure 19 / Section 6.8");
  const Catalog tpch = MakeTpchCatalog(1.0);
  PrintOneSpace(Make3DHQ5b(tpch), tpch);
  PrintOneSpace(Make4DHQ8b(tpch), tpch);
  std::printf("\n  Paper's shape: COM shows the same story as PostgreSQL — "
              "large NAT/SEER MSO, small BOU MSO,\n  robustness enhancement "
              ">= 10x for >90%% of locations. The result is not an engine "
              "artifact.\n");
}

void BM_OptimizeCommercial(benchmark::State& state) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const QuerySpec q = Make3DHQ5b(tpch);
  QueryOptimizer opt(q, tpch, CostParams::Commercial());
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.OptimizeAt({0.1, 0.1, 0.1}));
  }
}
BENCHMARK(BM_OptimizeCommercial);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

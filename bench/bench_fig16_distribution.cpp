// Figure 16: spatial distribution of the robustness enhancement
// native_worst(q_a) / SubOpt_BOU(q_a) over the 5D_DS_Q19 error space,
// bucketed by decades, for both BOU and SEER.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace bouquet {
namespace {

using benchutil::BuildSpace;
using benchutil::PrintHeader;

void PrintReproduction() {
  PrintHeader("Spatial distribution of enhanced robustness (5D_DS_Q19)",
              "Figure 16");
  auto p = BuildSpace("5D_DS_Q19");
  const RobustnessProfile nat =
      ComputeNativeProfile(*p->diagram, p->opt.get());
  BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get());
  const BouquetProfile bou = ComputeBouquetProfile(sim, false);
  const SeerResult seer_red = SeerReduce(*p->diagram, p->opt.get(), 0.2);
  const RobustnessProfile seer =
      ComputeAssignmentProfile(*p->diagram, p->opt.get(), seer_red.plan_at);

  const auto bou_dist = EnhancementDistribution(bou.subopt,
                                                nat.subopt_worst, 6);
  const auto seer_dist =
      EnhancementDistribution(seer.subopt_worst, nat.subopt_worst, 6);
  const char* labels[] = {"< 1x (harm)", "[1x, 10x)",    "[10x, 100x)",
                          "[100x, 1e3x)", "[1e3x, 1e4x)", ">= 1e4x"};
  std::printf("\n  %-14s %-10s %-10s\n", "enhancement", "BOU", "SEER");
  for (int b = 0; b < 6; ++b) {
    std::printf("  %-14s %8.1f%%  %8.1f%%\n", labels[b], bou_dist[b] * 100,
                seer_dist[b] * 100);
  }
  double bou_1plus = 0, bou_2plus = 0;
  for (int b = 2; b < 6; ++b) bou_1plus += bou_dist[b];
  for (int b = 3; b < 6; ++b) bou_2plus += bou_dist[b];
  std::printf("\n  BOU locations improved >= 1 order of magnitude: %.1f%%; "
              ">= 2 orders: %.1f%%\n",
              bou_1plus * 100, bou_2plus * 100);
  std::printf("  Paper's shape: the vast majority of locations gain orders "
              "of magnitude under BOU,\n  while SEER's enhancement stays "
              "below 10x everywhere (our NAT is ~100x less pessimal than\n"
              "  the paper's 100GB disk-resident setup, which shifts the "
              "decade buckets down uniformly).\n");
}

void BM_RunOptimized5D(benchmark::State& state) {
  static auto p = BuildSpace("5D_DS_Q19");
  static BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get());
  uint64_t qa = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunOptimized(qa));
    qa = (qa + 97) % p->grid->num_points();
  }
}
BENCHMARK(BM_RunOptimized5D);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Section 6.1: compile-time overheads of POSP generation — exhaustive vs
// the contour-focused recursive-subdivision approach, serial vs parallel
// sharding, and (PR 3) memoryless vs incremental compilation (invariant-
// subplan memo + recost-first fast path).
//
// Also emits machine-readable BENCH_compile.json with per-template dp_calls
// / recost_hits / wall seconds; `--smoke` runs only the fixed 2D/res-100
// template (plus its memoryless reference) for the CI perf gate checked by
// scripts/check_compile_smoke.py.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "ess/contour_generator.h"

namespace bouquet {
namespace {

using benchutil::AllSpaceNames;
using benchutil::PrintHeader;

struct TemplateReport {
  std::string name;
  uint64_t points = 0;
  PospStats incremental;
  PospStats memoryless;
};

double Reduction(const TemplateReport& r) {
  return r.incremental.dp_calls > 0
             ? static_cast<double>(r.memoryless.dp_calls) /
                   static_cast<double>(r.incremental.dp_calls)
             : 0.0;
}

double Speedup(const TemplateReport& r) {
  return r.incremental.wall_seconds > 0.0
             ? r.memoryless.wall_seconds / r.incremental.wall_seconds
             : 0.0;
}

TemplateReport RunTemplate(const std::string& label, const QuerySpec& query,
                           const Catalog& catalog, const EssGrid& grid,
                           ThreadPool* pool) {
  TemplateReport r;
  r.name = label;
  r.points = grid.num_points();
  PospOptions inc;
  inc.pool = pool;
  GeneratePosp(query, catalog, CostParams::Postgres(), grid, inc,
               &r.incremental);
  PospOptions memless;
  memless.pool = pool;
  memless.incremental = false;
  GeneratePosp(query, catalog, CostParams::Postgres(), grid, memless,
               &r.memoryless);
  return r;
}

void WriteBenchJson(const std::vector<TemplateReport>& reports,
                    const char* path) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"templates\": [\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const TemplateReport& r = reports[i];
    std::fprintf(
        f,
        "    {\n"
        "      \"name\": \"%s\",\n"
        "      \"points\": %llu,\n"
        "      \"incremental\": {\"dp_calls\": %lld, \"recost_hits\": %lld, "
        "\"memo_hits\": %lld, \"audit_checks\": %lld, \"audit_failures\": "
        "%lld, \"wall_seconds\": %.6f},\n"
        "      \"memoryless\": {\"dp_calls\": %lld, \"wall_seconds\": "
        "%.6f},\n"
        "      \"dp_reduction\": %.3f,\n"
        "      \"speedup\": %.3f\n"
        "    }%s\n",
        r.name.c_str(), static_cast<unsigned long long>(r.points),
        r.incremental.dp_calls, r.incremental.recost_hits,
        r.incremental.memo_hits, r.incremental.audit_checks,
        r.incremental.audit_failures, r.incremental.wall_seconds,
        r.memoryless.dp_calls, r.memoryless.wall_seconds, Reduction(r),
        Speedup(r), i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n  wrote %s\n", path);
}

void PrintTemplateTable(const std::vector<TemplateReport>& reports) {
  std::printf("\n  %-16s %-9s %-10s %-11s %-10s %-9s %-9s %-8s\n", "template",
              "points", "dp calls", "recost", "memoryless", "inc time",
              "mem time", "speedup");
  for (const TemplateReport& r : reports) {
    std::printf(
        "  %-16s %-9llu %-10lld %-11lld %-10lld %-7.2fs  %-7.2fs  %5.2fx\n",
        r.name.c_str(), static_cast<unsigned long long>(r.points),
        r.incremental.dp_calls, r.incremental.recost_hits,
        r.memoryless.dp_calls, r.incremental.wall_seconds,
        r.memoryless.wall_seconds, Speedup(r));
  }
}

// The CI perf gate's fixed templates: stock 2D and 3D TPC-H spaces at
// resolution 100 (the tentpole's acceptance targets).
std::vector<TemplateReport> RunFixedTemplates(bool smoke_only) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  ThreadPool pool(8);

  std::vector<TemplateReport> reports;
  {
    const QuerySpec q2d = Make2DHQ8a(tpch);
    const EssGrid grid(q2d, {100, 100});
    reports.push_back(RunTemplate("2D_H_Q8a_res100", q2d, tpch, grid, &pool));
  }
  if (!smoke_only) {
    const NamedSpace space = GetSpace("3D_H_Q5", tpch, tpcds);
    const EssGrid grid(space.query, {100, 100, 100});
    reports.push_back(
        RunTemplate("3D_H_Q5_res100", space.query, tpch, grid, &pool));
  }
  return reports;
}

void PrintReproduction() {
  PrintHeader("Compile-time overheads: exhaustive vs contour-focused POSP",
              "Section 6.1");
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  std::printf("\n  %-12s %-9s %-12s %-12s %-10s %-12s %-12s\n", "space",
              "points", "exh calls", "exh time", "par time", "cntr calls",
              "cntr time");
  for (const auto& name : AllSpaceNames()) {
    const NamedSpace space = GetSpace(name, tpch, tpcds);
    const Catalog& cat = space.benchmark == "H" ? tpch : tpcds;
    const EssGrid grid = EssGrid::WithDefaultResolution(space.query);

    PospStats serial_stats;
    GeneratePosp(space.query, cat, CostParams::Postgres(), grid,
                 PospOptions{1}, &serial_stats);
    PospStats par_stats;
    GeneratePosp(space.query, cat, CostParams::Postgres(), grid,
                 PospOptions{8}, &par_stats);
    const auto t0 = std::chrono::steady_clock::now();
    const SparsePosp sparse = GenerateContourPosp(
        space.query, cat, CostParams::Postgres(), grid, 2.0);
    const double sparse_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::printf("  %-12s %-9llu %-12lld %-10.2fs  %-8.2fs  %-12lld %-10.2fs\n",
                name.c_str(),
                static_cast<unsigned long long>(grid.num_points()),
                serial_stats.optimizer_calls, serial_stats.wall_seconds,
                par_stats.wall_seconds, sparse.optimizer_calls, sparse_secs);
  }
  std::printf("\n  Paper's shape: contour-focused generation skips most of "
              "the space between contours;\n  parallelism brings hours down "
              "to minutes (here: everything is already seconds).\n");
}

void BM_ContourFocusedPosp3D(benchmark::State& state) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace("3D_H_Q5", tpch, tpcds);
  const EssGrid grid(space.query, {20, 20, 20});
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateContourPosp(
        space.query, tpch, CostParams::Postgres(), grid, 2.0));
  }
}
BENCHMARK(BM_ContourFocusedPosp3D)->Unit(benchmark::kMillisecond);

void BM_IncrementalPosp2D(benchmark::State& state) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const QuerySpec query = Make2DHQ8a(tpch);
  const EssGrid grid(query, {64, 64});
  PospOptions opts;
  opts.incremental = state.range(0) != 0;
  for (auto _ : state) {
    const PlanDiagram d =
        GeneratePosp(query, tpch, CostParams::Postgres(), grid, opts);
    benchmark::DoNotOptimize(d.num_plans());
  }
}
BENCHMARK(BM_IncrementalPosp2D)
    ->Arg(0)  // memoryless
    ->Arg(1)  // incremental
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (smoke) {
    // CI perf gate: just the fixed 2D/res-100 template + its memoryless
    // reference, written to BENCH_compile.json for the baseline check.
    const auto reports = bouquet::RunFixedTemplates(/*smoke_only=*/true);
    bouquet::PrintTemplateTable(reports);
    bouquet::WriteBenchJson(reports, "BENCH_compile.json");
    return 0;
  }

  bouquet::PrintReproduction();
  bouquet::PrintHeader(
      "Incremental POSP compilation: memoryless vs memo + recost fast path",
      "the Section 6.1 overheads, PR 3 optimization");
  const auto reports = bouquet::RunFixedTemplates(/*smoke_only=*/false);
  bouquet::PrintTemplateTable(reports);
  bouquet::WriteBenchJson(reports, "BENCH_compile.json");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Section 6.1: compile-time overheads of POSP generation — exhaustive vs
// the contour-focused recursive-subdivision approach, and serial vs
// parallel sharding (the task is embarrassingly parallel).

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "ess/contour_generator.h"

namespace bouquet {
namespace {

using benchutil::AllSpaceNames;
using benchutil::PrintHeader;

void PrintReproduction() {
  PrintHeader("Compile-time overheads: exhaustive vs contour-focused POSP",
              "Section 6.1");
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  std::printf("\n  %-12s %-9s %-12s %-12s %-10s %-12s %-12s\n", "space",
              "points", "exh calls", "exh time", "par time", "cntr calls",
              "cntr time");
  for (const auto& name : AllSpaceNames()) {
    const NamedSpace space = GetSpace(name, tpch, tpcds);
    const Catalog& cat = space.benchmark == "H" ? tpch : tpcds;
    const EssGrid grid = EssGrid::WithDefaultResolution(space.query);

    PospStats serial_stats;
    GeneratePosp(space.query, cat, CostParams::Postgres(), grid,
                 PospOptions{1}, &serial_stats);
    PospStats par_stats;
    GeneratePosp(space.query, cat, CostParams::Postgres(), grid,
                 PospOptions{8}, &par_stats);
    const auto t0 = std::chrono::steady_clock::now();
    const SparsePosp sparse = GenerateContourPosp(
        space.query, cat, CostParams::Postgres(), grid, 2.0);
    const double sparse_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::printf("  %-12s %-9llu %-12lld %-10.2fs  %-8.2fs  %-12lld %-10.2fs\n",
                name.c_str(),
                static_cast<unsigned long long>(grid.num_points()),
                serial_stats.optimizer_calls, serial_stats.wall_seconds,
                par_stats.wall_seconds, sparse.optimizer_calls, sparse_secs);
  }
  std::printf("\n  Paper's shape: contour-focused generation skips most of "
              "the space between contours;\n  parallelism brings hours down "
              "to minutes (here: everything is already seconds).\n");
}

void BM_ContourFocusedPosp3D(benchmark::State& state) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace("3D_H_Q5", tpch, tpcds);
  const EssGrid grid(space.query, {20, 20, 20});
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateContourPosp(
        space.query, tpch, CostParams::Postgres(), grid, 2.0));
  }
}
BENCHMARK(BM_ContourFocusedPosp3D)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

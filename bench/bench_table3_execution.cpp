// Table 3 / Section 6.7: real-data execution of the 2D_H_Q8a query.
// The native optimizer mis-estimates q_a via AVI-style errors and picks a
// disastrous plan; the bouquet discovers the true location through
// cost-limited partial executions. Reports the contour-wise breakup for
// basic and optimized BOU, and the NAT / BOU / optimal wall-clock summary.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"
#include "bouquet/driver.h"
#include "common/str_util.h"

namespace bouquet {
namespace {

using benchutil::PrintHeader;

struct RealSetup {
  Database db;
  Catalog catalog;
  QuerySpec query;
  std::vector<double> qa;
  std::unique_ptr<QueryOptimizer> opt;
  std::unique_ptr<EssGrid> grid;
  std::unique_ptr<PlanDiagram> diagram;
  std::unique_ptr<PlanBouquet> bouquet;
};

std::unique_ptr<RealSetup> Build() {
  auto s = std::make_unique<RealSetup>();
  TpchDataOptions opts;
  opts.mini_scale = 2.0;  // lineitem = 120k rows: seconds-scale executions
  MakeTpchDatabase(&s->db, opts);
  SyncTpchCatalog(s->db, &s->catalog);
  s->query = Make2DHQ8a(s->catalog);
  // The paper's q_a = (33.7%, 45.6%); NAT's estimate will be the magic 1/3
  // per dimension *after AVI-style compounding* — we model the paper's
  // scenario by giving NAT a badly underestimated location.
  s->qa = BindSelectionConstants(&s->query, s->catalog, {0.337, 0.456});
  s->opt = std::make_unique<QueryOptimizer>(s->query, s->catalog,
                                            CostParams::Postgres());
  s->grid = std::make_unique<EssGrid>(s->query, std::vector<int>{24, 24});
  s->diagram = std::make_unique<PlanDiagram>(GeneratePosp(
      s->query, s->catalog, CostParams::Postgres(), *s->grid,
      PospOptions{8}));
  s->bouquet = std::make_unique<PlanBouquet>(
      BuildBouquet(*s->diagram, s->opt.get()));
  return s;
}

void PrintContourBreakup(const char* label, const DriverResult& res) {
  std::printf("\n  -- %s: %d partial executions, %d contours crossed --\n",
              label, res.num_executions, res.contours_crossed);
  std::printf("  %-8s %-7s %-12s %-12s %-9s %s\n", "contour", "#exec",
              "cost units", "time (s)", "spilled", "outcome");
  std::map<int, std::tuple<int, double, double, int>> by_contour;
  for (const auto& step : res.steps) {
    auto& [execs, units, secs, spills] = by_contour[step.contour];
    execs += 1;
    units += step.charged;
    secs += step.wall_seconds;
    spills += step.spilled ? 1 : 0;
  }
  for (const auto& [contour, agg] : by_contour) {
    const auto& [execs, units, secs, spills] = agg;
    // kNoContour marks unbudgeted native runs; printing it as "contour 0"
    // would alias the first real contour (1-based in the paper's tables).
    char bucket[16];
    if (contour == DriverStep::kNoContour) {
      std::snprintf(bucket, sizeof(bucket), "%s", "native");
    } else {
      std::snprintf(bucket, sizeof(bucket), "%d", contour + 1);
    }
    std::printf("  %-8s %-7d %-12s %-12.3f %-9d %s\n", bucket, execs,
                FormatSci(units).c_str(), secs, spills,
                contour == res.steps.back().contour && res.completed
                    ? "completed"
                    : "exhausted");
  }
  std::printf("  total: %s cost units, %.3f s\n",
              FormatSci(res.total_cost_units).c_str(), res.wall_seconds);
}

void PrintReproduction() {
  PrintHeader("Real execution of 2D_H_Q8a: NAT vs basic/optimized BOU",
              "Table 3 / Section 6.7");
  auto s = Build();
  std::printf("\n  data: lineitem=%lld orders=%lld part=%lld rows "
              "(scaled-down TPC-H)\n",
              static_cast<long long>(s->db.table("lineitem").num_rows()),
              static_cast<long long>(s->db.table("orders").num_rows()),
              static_cast<long long>(s->db.table("part").num_rows()));
  std::printf("  actual location q_a = (%.1f%%, %.1f%%)\n",
              s->qa[0] * 100, s->qa[1] * 100);
  std::printf("  bouquet: %d plans across %zu contours (rho=%d)\n",
              s->bouquet->cardinality(), s->bouquet->contours.size(),
              s->bouquet->rho());

  BouquetDriver driver(*s->bouquet, *s->diagram, s->opt.get(), &s->db);

  // NAT: plan chosen at the erroneous estimate, executed at the truth.
  const DimVector qe = {1e-3, 1e-3};
  const Plan nat_plan = s->opt->OptimizeAt(qe);
  const DriverResult nat = driver.RunSinglePlan(*nat_plan.root);

  // Oracle: the plan optimal at the actual location.
  const Plan oracle_plan = s->opt->OptimizeAt(s->qa);
  const DriverResult oracle = driver.RunSinglePlan(*oracle_plan.root);

  const DriverResult basic = driver.RunBasic();
  const DriverResult optimized = driver.RunOptimized();

  PrintContourBreakup("Basic BOU", basic);
  PrintContourBreakup("Optimized BOU", optimized);

  std::printf("\n  -- Performance summary --\n");
  std::printf("  %-22s %-12s %-14s %-10s\n", "strategy", "time (s)",
              "cost units", "sub-opt");
  auto row = [&](const char* name, const DriverResult& r) {
    std::printf("  %-22s %-12.3f %-14s %-10.2f\n", name, r.wall_seconds,
                FormatSci(r.total_cost_units).c_str(),
                r.total_cost_units / oracle.total_cost_units);
  };
  row("NAT (qe wrong)", nat);
  row("Basic BOU", basic);
  row("Optimized BOU", optimized);
  row("Optimal (oracle)", oracle);
  std::printf("\n  result rows: NAT=%zu basic=%zu optimized=%zu oracle=%zu "
              "(must all match)\n",
              nat.rows.size(), basic.rows.size(), optimized.rows.size(),
              oracle.rows.size());
  std::printf("  Paper's shape: NAT ~36x optimal; basic BOU ~7x; optimized "
              "BOU ~4x with fewer partial executions.\n");
}

void BM_OraclePlanExecution(benchmark::State& state) {
  static auto s = Build();
  static BouquetDriver driver(*s->bouquet, *s->diagram, s->opt.get(),
                              &s->db);
  const Plan plan = s->opt->OptimizeAt(s->qa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(driver.RunSinglePlan(*plan.root));
  }
}
BENCHMARK(BM_OraclePlanExecution)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bouquet

int main(int argc, char** argv) {
  bouquet::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

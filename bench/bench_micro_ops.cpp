// Microbenchmarks of the core library operations: optimizer invocations,
// abstract plan recosting, bouquet simulation, reduction passes, and
// executor throughput. These are the primitives whose costs determine the
// compile-time overheads discussed in Section 6.1.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bouquet/driver.h"
#include "ess/anorexic.h"
#include "executor/builder.h"

namespace bouquet {
namespace {

using benchutil::BuildSpace;

void BM_OptimizerCall_3Rel(benchmark::State& state) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const QuerySpec eq = MakeEqQuery(tpch);
  QueryOptimizer opt(eq, tpch, CostParams::Postgres());
  for (auto _ : state) benchmark::DoNotOptimize(opt.OptimizeAt({0.1}));
}
BENCHMARK(BM_OptimizerCall_3Rel);

void BM_OptimizerCall_6Rel(benchmark::State& state) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace("3D_H_Q5", tpch, tpcds);
  QueryOptimizer opt(space.query, tpch, CostParams::Postgres());
  DimVector dims;
  for (const auto& d : space.query.error_dims) dims.push_back(d.hi);
  for (auto _ : state) benchmark::DoNotOptimize(opt.OptimizeAt(dims));
}
BENCHMARK(BM_OptimizerCall_6Rel);

void BM_OptimizerCall_8Rel(benchmark::State& state) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace("4D_H_Q8", tpch, tpcds);
  QueryOptimizer opt(space.query, tpch, CostParams::Postgres());
  DimVector dims;
  for (const auto& d : space.query.error_dims) dims.push_back(d.hi);
  for (auto _ : state) benchmark::DoNotOptimize(opt.OptimizeAt(dims));
}
BENCHMARK(BM_OptimizerCall_8Rel);

void BM_RecostPlan(benchmark::State& state) {
  static auto p = BuildSpace("4D_H_Q8");
  const PlanNode& root = *p->diagram->plan(0).root;
  DimVector dims;
  for (const auto& d : p->query.error_dims) dims.push_back(d.lo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p->opt->CostPlanAt(root, dims));
  }
}
BENCHMARK(BM_RecostPlan);

void BM_SimulatorConstruction(benchmark::State& state) {
  static auto p = BuildSpace("3D_H_Q5");
  for (auto _ : state) {
    BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get());
    benchmark::DoNotOptimize(&sim);
  }
}
BENCHMARK(BM_SimulatorConstruction)->Unit(benchmark::kMillisecond);

void BM_SimulatedRunBasic(benchmark::State& state) {
  static auto p = BuildSpace("5D_DS_Q19");
  static BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get());
  uint64_t qa = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunBasic(qa));
    qa = (qa + 211) % p->grid->num_points();
  }
}
BENCHMARK(BM_SimulatedRunBasic);

void BM_SimulatedRunOptimized(benchmark::State& state) {
  static auto p = BuildSpace("5D_DS_Q19");
  static BouquetSimulator sim(*p->bouquet, *p->diagram, p->opt.get());
  uint64_t qa = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunOptimized(qa));
    qa = (qa + 211) % p->grid->num_points();
  }
}
BENCHMARK(BM_SimulatedRunOptimized);

void BM_AnorexicReduction(benchmark::State& state) {
  static auto p = BuildSpace("3D_DS_Q96");
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnorexicReduce(*p->diagram, p->opt.get(), 0.2));
  }
}
BENCHMARK(BM_AnorexicReduction)->Unit(benchmark::kMillisecond);

void BM_ExecutorHashJoinThroughput(benchmark::State& state) {
  static Database db = [] {
    Database d;
    TpchDataOptions opts;
    opts.mini_scale = 1.0;
    MakeTpchDatabase(&d, opts);
    return d;
  }();
  static Catalog catalog = [] {
    Catalog c;
    SyncTpchCatalog(db, &c);
    return c;
  }();
  static QuerySpec query = [] {
    QuerySpec q = Make2DHQ8a(catalog);
    BindSelectionConstants(&q, catalog, {0.5, 0.5});
    return q;
  }();
  static QueryOptimizer opt(query, catalog, CostParams::Postgres());
  const Plan plan = opt.OptimizeAt({0.5, 0.5});
  int64_t rows = 0;
  for (auto _ : state) {
    ExecContext ctx;
    ctx.query = &query;
    ctx.catalog = &catalog;
    ctx.db = &db;
    ctx.cost_model = &opt.cost_model();
    const ExecutionOutcome out = ExecutePlan(
        *plan.root, &ctx, std::numeric_limits<double>::infinity(), nullptr);
    rows = out.rows_emitted;
    benchmark::DoNotOptimize(out);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_ExecutorHashJoinThroughput)->Unit(benchmark::kMillisecond);

void BM_ContourIdentification(benchmark::State& state) {
  static auto p = BuildSpace("4D_DS_Q26");
  for (auto _ : state) {
    benchmark::DoNotOptimize(IdentifyContours(*p->diagram, 2.0));
  }
}
BENCHMARK(BM_ContourIdentification)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bouquet

BENCHMARK_MAIN();

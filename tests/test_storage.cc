// Tests for storage/: DataTable, indexes, Database registry, data
// generators.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/datagen.h"
#include "storage/index.h"
#include "storage/table.h"

namespace bouquet {
namespace {

DataTable SmallTable() {
  DataTable t("t", {"k", "v"});
  t.AppendRow({1, 10});
  t.AppendRow({2, 20});
  t.AppendRow({2, 21});
  t.AppendRow({5, 50});
  return t;
}

TEST(DataTableTest, AppendAndRead) {
  const DataTable t = SmallTable();
  EXPECT_EQ(t.num_rows(), 4);
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.value(0, 2), 2);
  EXPECT_EQ(t.value(1, 3), 50);
  EXPECT_EQ(t.ColumnIndex("v"), 1);
  EXPECT_EQ(t.ColumnIndex("nope"), -1);
}

TEST(DataTableTest, BulkLoad) {
  DataTable t("t", {"a", "b"});
  t.mutable_column(0) = {1, 2, 3};
  t.mutable_column(1) = {4, 5, 6};
  t.FinalizeBulkLoad();
  EXPECT_EQ(t.num_rows(), 3);
}

TEST(DataTableTest, ComputeColumnStats) {
  const DataTable t = SmallTable();
  const ColumnStats s = t.ComputeColumnStats(0, 8);
  EXPECT_DOUBLE_EQ(s.ndv, 3);  // {1, 2, 5}
  EXPECT_EQ(s.min_value, 1);
  EXPECT_EQ(s.max_value, 5);
  EXPECT_FALSE(s.histogram.empty());
}

TEST(DataTableTest, SyncCatalog) {
  Catalog c;
  SmallTable().SyncCatalog(&c, 64.0);
  ASSERT_TRUE(c.HasTable("t"));
  const TableInfo& info = c.GetTable("t");
  EXPECT_DOUBLE_EQ(info.stats.row_count, 4);
  EXPECT_DOUBLE_EQ(info.stats.row_width_bytes, 64.0);
  EXPECT_TRUE(info.columns[0].has_index);
}

TEST(HashIndexTest, LookupGroups) {
  const DataTable t = SmallTable();
  const HashIndex idx = HashIndex::Build(t, 0);
  EXPECT_EQ(idx.Lookup(2).size(), 2u);
  EXPECT_EQ(idx.Lookup(5).size(), 1u);
  EXPECT_TRUE(idx.Lookup(99).empty());
}

TEST(SortedIndexTest, RangeQueries) {
  const DataTable t = SmallTable();
  const SortedIndex idx = SortedIndex::Build(t, 0);
  EXPECT_EQ(idx.CountRange(2, 5), 3);
  EXPECT_EQ(idx.CountRange(3, 4), 0);
  EXPECT_EQ(idx.CountRange(INT64_MIN, INT64_MAX), 4);
  const auto rows = idx.Range(1, 2);
  EXPECT_EQ(rows.size(), 3u);
  // Value order: row of k=1 first.
  EXPECT_EQ(t.value(0, rows[0]), 1);
}

TEST(DatabaseTest, AddReplaceInvalidatesIndexes) {
  Database db;
  db.AddTable(SmallTable());
  const HashIndex& idx1 = db.hash_index("t", 0);
  EXPECT_EQ(idx1.Lookup(2).size(), 2u);
  // Replace with different content.
  DataTable t2("t", {"k", "v"});
  t2.AppendRow({2, 1});
  db.AddTable(std::move(t2));
  const HashIndex& idx2 = db.hash_index("t", 0);
  EXPECT_EQ(idx2.Lookup(2).size(), 1u);
}

// Regression (thread-safety capability migration): AddTable's cached-index
// invalidation used to erase from the shared index maps WITHOUT taking
// index_mu_, racing concurrent hash_index()/sorted_index() lookups of
// *other* tables — the maps are shared even when the keys differ. The
// GUARDED_BY annotations flagged it statically; under TSan this test
// reproduced the race before the fix.
TEST(DatabaseTest, AddTableInvalidationDoesNotRaceOtherTableLookups) {
  Database db;
  db.AddTable(SmallTable());  // table "t": repeatedly replaced
  DataTable stable("s", {"k"});
  for (int i = 0; i < 16; ++i) stable.AppendRow({i % 4});
  db.AddTable(std::move(stable));  // table "s": concurrently indexed

  // Prewarm so the readers stay on the cache-hit path (the shared maps are
  // what the fixed race is about; a cold miss would additionally scan the
  // table registry, which AddTable legitimately mutates).
  db.hash_index("s", 0);
  db.sorted_index("s", 0);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(2);
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&db, &stop] {
      while (!stop.load()) {
        EXPECT_EQ(db.hash_index("s", 0).Lookup(1).size(), 4u);
        EXPECT_EQ(db.sorted_index("s", 0).CountRange(0, 3), 16);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    db.AddTable(SmallTable());  // replace "t" -> invalidates its caches
    db.hash_index("t", 0);      // repopulate so the next erase has work
  }
  stop.store(true);
  for (auto& t : readers) t.join();
}

// Cache hits take the shared lock, so concurrent lookups of already-built
// indexes return the same instances (built exactly once per (table, col)).
TEST(DatabaseTest, ConcurrentLookupsShareOneBuiltIndex) {
  Database db;
  db.AddTable(SmallTable());
  const HashIndex* first = &db.hash_index("t", 0);
  std::vector<const HashIndex*> seen(8, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(seen.size());
  for (size_t i = 0; i < seen.size(); ++i) {
    threads.emplace_back([&db, &seen, i] { seen[i] = &db.hash_index("t", 0); });
  }
  for (auto& t : threads) t.join();
  for (const HashIndex* p : seen) EXPECT_EQ(p, first);
}

TEST(DatabaseTest, SyncCatalogAll) {
  Database db;
  db.AddTable(SmallTable());
  Catalog c;
  db.SyncCatalog(&c);
  EXPECT_TRUE(c.HasTable("t"));
}

// ---------------------------------------------------------------------------
// datagen
// ---------------------------------------------------------------------------

TEST(DatagenTest, Sequential) {
  const auto v = datagen::Sequential(5, 10);
  EXPECT_EQ(v, (std::vector<int64_t>{10, 11, 12, 13, 14}));
}

TEST(DatagenTest, UniformBounds) {
  Rng rng(3);
  const auto v = datagen::Uniform(&rng, 1000, -5, 5);
  for (int64_t x : v) {
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(DatagenTest, ForeignKeyFullIntegrity) {
  Rng rng(4);
  const auto parents = datagen::Sequential(100);
  const auto fks = datagen::ForeignKey(&rng, 5000, parents, 1.0);
  const std::set<int64_t> parent_set(parents.begin(), parents.end());
  for (int64_t fk : fks) EXPECT_TRUE(parent_set.count(fk));
}

TEST(DatagenTest, ForeignKeyMatchFraction) {
  Rng rng(5);
  const auto parents = datagen::Sequential(100);
  const auto fks = datagen::ForeignKey(&rng, 10000, parents, 0.4);
  int matched = 0;
  for (int64_t fk : fks) matched += fk > 0;
  EXPECT_NEAR(matched / 10000.0, 0.4, 0.03);
  // Dangling keys must be unique (never accidentally join).
  std::set<int64_t> dangling;
  for (int64_t fk : fks) {
    if (fk < 0) {
      EXPECT_TRUE(dangling.insert(fk).second);
    }
  }
}

TEST(DatagenTest, DeterministicUnderSeed) {
  Rng a(9), b(9);
  EXPECT_EQ(datagen::Uniform(&a, 100, 0, 1000),
            datagen::Uniform(&b, 100, 0, 1000));
}

TEST(DatagenTest, GaussianClamped) {
  Rng rng(11);
  const auto v = datagen::Gaussian(&rng, 1000, 50.0, 100.0, 0, 100);
  for (int64_t x : v) {
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 100);
  }
}

TEST(DatagenTest, ZipfDomain) {
  Rng rng(13);
  const auto v = datagen::Zipf(&rng, 1000, 50, 0.8);
  for (int64_t x : v) {
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 50);
  }
}

}  // namespace
}  // namespace bouquet

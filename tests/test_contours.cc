// Tests for bouquet/contours: isocost ladder placement and the frontier
// (dominance) properties that underpin the execution guarantee.

#include <gtest/gtest.h>

#include "bouquet/contours.h"
#include "ess/posp_generator.h"
#include "workloads/spaces.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

class ContourTest : public ::testing::Test {
 protected:
  ContourTest()
      : tpch_(MakeTpchCatalog(1.0)),
        tpcds_(MakeTpcdsCatalog(100.0)),
        space_(GetSpace("3D_H_Q5", tpch_, tpcds_)),
        grid_(space_.query, {8, 8, 8}),
        diagram_(GeneratePosp(space_.query, tpch_, CostParams::Postgres(),
                              grid_)) {}

  Catalog tpch_, tpcds_;
  NamedSpace space_;
  EssGrid grid_;
  PlanDiagram diagram_;
};

TEST_F(ContourTest, LadderBoundaryConditions) {
  const ContourSet cs = IdentifyContours(diagram_, 2.0);
  ASSERT_FALSE(cs.step_costs.empty());
  EXPECT_DOUBLE_EQ(cs.step_costs.back(), diagram_.Cmax());
  EXPECT_GE(cs.step_costs.front() * (1 + 1e-12), diagram_.Cmin());
  EXPECT_LT(cs.step_costs.front() / 2.0, diagram_.Cmin());
}

TEST_F(ContourTest, FrontierPointsRespectStepCost) {
  const ContourSet cs = IdentifyContours(diagram_, 2.0);
  for (size_t k = 0; k < cs.points.size(); ++k) {
    for (uint64_t p : cs.points[k]) {
      EXPECT_LE(diagram_.cost_at(p), cs.step_costs[k] * (1 + 1e-9));
    }
  }
}

TEST_F(ContourTest, FrontierSuccessorsExceedStep) {
  const ContourSet cs = IdentifyContours(diagram_, 2.0);
  for (size_t k = 0; k < cs.points.size(); ++k) {
    for (uint64_t linear : cs.points[k]) {
      const GridPoint p = grid_.PointAt(linear);
      for (int d = 0; d < grid_.dims(); ++d) {
        if (p[d] + 1 >= grid_.resolution(d)) continue;
        const uint64_t succ = grid_.LinearWithDim(linear, d, p[d] + 1);
        EXPECT_GT(diagram_.cost_at(succ), cs.step_costs[k] * (1 - 1e-9));
      }
    }
  }
}

TEST_F(ContourTest, EveryPointDominatedByItsBandFrontier) {
  // The execution guarantee: any q_a with PIC(q_a) <= IC_k is dominated by
  // some frontier point of contour k.
  const ContourSet cs = IdentifyContours(diagram_, 2.0);
  grid_.ForEach([&](uint64_t linear, const GridPoint& p) {
    const int k = BandOf(cs, diagram_.cost_at(linear));
    bool dominated = false;
    for (uint64_t fl : cs.points[k]) {
      if (EssGrid::Dominates(p, grid_.PointAt(fl))) {
        dominated = true;
        break;
      }
    }
    EXPECT_TRUE(dominated) << "point " << linear << " band " << k;
  });
}

TEST_F(ContourTest, BandOfClassification) {
  const ContourSet cs = IdentifyContours(diagram_, 2.0);
  EXPECT_EQ(BandOf(cs, diagram_.Cmin()), 0);
  EXPECT_EQ(BandOf(cs, diagram_.Cmax()),
            static_cast<int>(cs.step_costs.size()) - 1);
  if (cs.step_costs.size() >= 2) {
    EXPECT_EQ(BandOf(cs, cs.step_costs[0] * 1.5), 1);
  }
}

TEST_F(ContourTest, LastContourContainsMaxCorner) {
  const ContourSet cs = IdentifyContours(diagram_, 2.0);
  const uint64_t corner = grid_.LinearIndex(grid_.MaxCorner());
  const auto& last = cs.points.back();
  EXPECT_NE(std::find(last.begin(), last.end(), corner), last.end());
}

TEST_F(ContourTest, LargerRatioFewerContours) {
  const ContourSet r2 = IdentifyContours(diagram_, 2.0);
  const ContourSet r4 = IdentifyContours(diagram_, 4.0);
  EXPECT_LE(r4.step_costs.size(), r2.step_costs.size());
}

TEST_F(ContourTest, ContoursNonEmpty) {
  const ContourSet cs = IdentifyContours(diagram_, 2.0);
  for (size_t k = 0; k < cs.points.size(); ++k) {
    EXPECT_FALSE(cs.points[k].empty()) << "contour " << k;
  }
}

// 1D contours must be single points (unique intersection, Section 3.1).
TEST(Contour1DTest, SinglePointPerContour) {
  const Catalog cat = MakeTpchCatalog(1.0);
  const QuerySpec q = MakeEqQuery(cat);
  const EssGrid grid(q, {60});
  const PlanDiagram d = GeneratePosp(q, cat, CostParams::Postgres(), grid);
  const ContourSet cs = IdentifyContours(d, 2.0);
  for (size_t k = 0; k < cs.points.size(); ++k) {
    EXPECT_EQ(cs.points[k].size(), 1u) << "contour " << k;
  }
  // Frontier selectivities increase with k.
  for (size_t k = 1; k < cs.points.size(); ++k) {
    EXPECT_GT(cs.points[k][0], cs.points[k - 1][0]);
  }
}

}  // namespace
}  // namespace bouquet

// Tests for robustness/metrics: the O(|plans|*|ESS|) profile computation is
// validated against the brute-force |ESS|^2 definition of Section 2.

#include <gtest/gtest.h>

#include <limits>

#include "ess/posp_generator.h"
#include "robustness/metrics.h"
#include "robustness/native.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest()
      : catalog_(MakeTpchCatalog(1.0)),
        query_(MakeEqQuery(catalog_)),
        grid_(query_, {24}),
        diagram_(GeneratePosp(query_, catalog_, CostParams::Postgres(),
                              grid_)),
        opt_(query_, catalog_, CostParams::Postgres()) {}

  Catalog catalog_;
  QuerySpec query_;
  EssGrid grid_;
  PlanDiagram diagram_;
  QueryOptimizer opt_;
};

TEST_F(MetricsTest, ProfileMatchesBruteForceDefinition) {
  const RobustnessProfile prof = ComputeNativeProfile(diagram_, &opt_);
  const uint64_t n = grid_.num_points();
  // Brute force over all (qe, qa) pairs.
  double brute_mso = 0.0;
  double brute_aso = 0.0;
  std::vector<double> brute_worst(n, 0.0);
  for (uint64_t qe = 0; qe < n; ++qe) {
    const PlanNode& plan = *diagram_.plan(diagram_.plan_at(qe)).root;
    for (uint64_t qa = 0; qa < n; ++qa) {
      const double subopt =
          opt_.CostPlanAt(plan, grid_.SelectivityAt(qa)) /
          diagram_.cost_at(qa);
      brute_worst[qa] = std::max(brute_worst[qa], subopt);
      brute_mso = std::max(brute_mso, subopt);
      brute_aso += subopt;
    }
  }
  brute_aso /= double(n) * double(n);
  EXPECT_NEAR(prof.mso, brute_mso, brute_mso * 1e-9);
  EXPECT_NEAR(prof.aso, brute_aso, brute_aso * 1e-9);
  for (uint64_t qa = 0; qa < n; ++qa) {
    EXPECT_NEAR(prof.subopt_worst[qa], brute_worst[qa],
                brute_worst[qa] * 1e-9);
  }
}

TEST_F(MetricsTest, SubOptNeverBelowOne) {
  const RobustnessProfile prof = ComputeNativeProfile(diagram_, &opt_);
  for (double w : prof.subopt_worst) EXPECT_GE(w, 1.0 - 1e-9);
  for (double a : prof.subopt_avg) EXPECT_GE(a, 1.0 - 1e-9);
  EXPECT_GE(prof.aso, 1.0 - 1e-9);
  EXPECT_GE(prof.mso, 1.0 - 1e-9);
}

TEST_F(MetricsTest, MsoPointConsistent) {
  const RobustnessProfile prof = ComputeNativeProfile(diagram_, &opt_);
  EXPECT_DOUBLE_EQ(prof.subopt_worst[prof.mso_point], prof.mso);
}

TEST_F(MetricsTest, SinglePlanPolicyProfile) {
  // Policy that always picks the plan optimal at the max corner.
  const int corner_plan = diagram_.plan_at(grid_.num_points() - 1);
  std::vector<int> assignment(grid_.num_points(), corner_plan);
  const RobustnessProfile prof =
      ComputeAssignmentProfile(diagram_, &opt_, assignment);
  EXPECT_EQ(prof.num_plans, 1);
  // Worst == average when a single plan is always chosen.
  for (uint64_t i = 0; i < grid_.num_points(); ++i) {
    EXPECT_NEAR(prof.subopt_worst[i], prof.subopt_avg[i], 1e-9);
  }
  // At the corner itself the plan is optimal.
  EXPECT_NEAR(prof.subopt_worst[grid_.num_points() - 1], 1.0, 1e-9);
}

TEST_F(MetricsTest, MaxHarmAndHarmFraction) {
  const std::vector<double> native = {10.0, 10.0, 10.0, 10.0};
  const std::vector<double> good = {2.0, 3.0, 1.0, 9.0};
  EXPECT_LT(MaxHarm(good, native), 0.0);
  EXPECT_DOUBLE_EQ(HarmFraction(good, native), 0.0);
  const std::vector<double> mixed = {2.0, 15.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(MaxHarm(mixed, native), 0.5);
  EXPECT_DOUBLE_EQ(HarmFraction(mixed, native), 0.25);
}

TEST_F(MetricsTest, EnhancementDistribution) {
  const std::vector<double> native = {100.0, 1000.0, 5.0, 0.5};
  const std::vector<double> subopt = {1.0, 1.0, 1.0, 1.0};
  // Ratios: 100 (bucket 3), 1000 (bucket 4), 5 (bucket 1), 0.5 (bucket 0).
  const auto dist = EnhancementDistribution(subopt, native, 5);
  ASSERT_EQ(dist.size(), 5u);
  EXPECT_DOUBLE_EQ(dist[0], 0.25);
  EXPECT_DOUBLE_EQ(dist[1], 0.25);
  EXPECT_DOUBLE_EQ(dist[2], 0.0);
  EXPECT_DOUBLE_EQ(dist[3], 0.25);
  EXPECT_DOUBLE_EQ(dist[4], 0.25);
  double sum = 0;
  for (double d : dist) sum += d;
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST_F(MetricsTest, EnhancementDistributionClampsTopBucket) {
  const std::vector<double> native = {1e9};
  const std::vector<double> subopt = {1.0};
  const auto dist = EnhancementDistribution(subopt, native, 4);
  EXPECT_DOUBLE_EQ(dist.back(), 1.0);
}

TEST_F(MetricsTest, MaxHarmEmptyInputIsZero) {
  // Regression: MaxHarm used to return its -1.0 scan seed on empty input,
  // which reads as "the policy helps everywhere" in reports that never ran
  // a single location.
  EXPECT_DOUBLE_EQ(MaxHarm({}, {}), 0.0);
}

TEST_F(MetricsTest, MaxHarmSkipsDegenerateEntries) {
  // Regression: a zero/non-finite native_worst entry used to trip an assert
  // (debug) or divide to +-inf (release). The convention is to skip such
  // entries from numerator AND denominator.
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> native = {10.0, 0.0, -4.0, inf, nan, 10.0};
  const std::vector<double> subopt = {15.0, 99.0, 99.0, 99.0, 99.0, nan};
  // Only entry 0 is valid: 15/10 - 1 = 0.5.
  EXPECT_DOUBLE_EQ(MaxHarm(subopt, native), 0.5);
  EXPECT_DOUBLE_EQ(HarmFraction(subopt, native), 1.0);  // 1 harmed / 1 valid
  // All-degenerate input reports "no harm observed", not a poisoned max.
  const std::vector<double> all_bad_native = {0.0, -1.0, inf};
  const std::vector<double> all_bad_subopt = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(MaxHarm(all_bad_subopt, all_bad_native), 0.0);
  EXPECT_DOUBLE_EQ(HarmFraction(all_bad_subopt, all_bad_native), 0.0);
}

TEST_F(MetricsTest, EnhancementDistributionZeroSubOptGoesToTopBucket) {
  // Regression: a zero subopt entry (e.g. an uninitialized profile slot)
  // made the enhancement ratio infinite and std::log10(inf) drove the
  // bucket index out of range — heap overflow. It must land in the top
  // bucket instead ("infinitely enhanced").
  const std::vector<double> native = {10.0, 10.0};
  const std::vector<double> subopt = {0.0, 2.0};
  const auto dist = EnhancementDistribution(subopt, native, 5);
  ASSERT_EQ(dist.size(), 5u);
  EXPECT_DOUBLE_EQ(dist.back(), 0.5);  // the zero entry
  EXPECT_DOUBLE_EQ(dist[1], 0.5);      // ratio 5 -> bucket 1
  double sum = 0;
  for (double d : dist) sum += d;
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST_F(MetricsTest, EnhancementDistributionClampsBucketCountToTwo) {
  // Regression: num_buckets < 2 (0, 1, or negative) either allocated an
  // empty vector and wrote through buckets[0], or collapsed harm and
  // enhancement into one bucket. The minimum shape is {harm, enhancement}.
  const std::vector<double> native = {0.5, 100.0};
  const std::vector<double> subopt = {1.0, 1.0};
  for (int n : {-3, 0, 1, 2}) {
    const auto dist = EnhancementDistribution(subopt, native, n);
    ASSERT_EQ(dist.size(), 2u) << "num_buckets=" << n;
    EXPECT_DOUBLE_EQ(dist[0], 0.5);  // the harmed location
    EXPECT_DOUBLE_EQ(dist[1], 0.5);  // everything enhanced
  }
}

TEST_F(MetricsTest, EnhancementDistributionEmptyInput) {
  const auto dist = EnhancementDistribution({}, {}, 3);
  ASSERT_EQ(dist.size(), 3u);
  for (double d : dist) EXPECT_DOUBLE_EQ(d, 0.0);
}

}  // namespace
}  // namespace bouquet

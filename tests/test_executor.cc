// Tests for executor/: operator correctness against a naive reference
// evaluation, cost-limited abort, instrumentation counters, and spilled
// subtree execution.

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "executor/builder.h"
#include "optimizer/optimizer.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

// Naive reference: count of part x lineitem x orders rows satisfying the
// bound filters, computed by brute hash lookups.
int64_t ReferenceCount(const Database& db, const QuerySpec& q) {
  const DataTable& part = db.table("part");
  const DataTable& lineitem = db.table("lineitem");
  const DataTable& orders = db.table("orders");

  auto filter_ok = [&](const DataTable& t, int64_t row) {
    for (const auto& f : q.filters) {
      if (f.table != t.name()) continue;
      const int64_t v = t.value(t.ColumnIndex(f.column), row);
      bool ok = true;
      switch (f.op) {
        case CompareOp::kLess: ok = v < f.constant; break;
        case CompareOp::kLessEqual: ok = v <= f.constant; break;
        case CompareOp::kGreater: ok = v > f.constant; break;
        case CompareOp::kGreaterEqual: ok = v >= f.constant; break;
        case CompareOp::kEqual: ok = v == f.constant; break;
      }
      if (!ok) return false;
    }
    return true;
  };

  std::unordered_map<int64_t, int64_t> part_pass;  // partkey -> multiplicity
  const int pk = part.ColumnIndex("p_partkey");
  for (int64_t r = 0; r < part.num_rows(); ++r) {
    if (filter_ok(part, r)) part_pass[part.value(pk, r)]++;
  }
  std::unordered_map<int64_t, int64_t> order_pass;
  const int ok_col = orders.ColumnIndex("o_orderkey");
  for (int64_t r = 0; r < orders.num_rows(); ++r) {
    if (filter_ok(orders, r)) order_pass[orders.value(ok_col, r)]++;
  }
  int64_t count = 0;
  const int lpk = lineitem.ColumnIndex("l_partkey");
  const int lok = lineitem.ColumnIndex("l_orderkey");
  for (int64_t r = 0; r < lineitem.num_rows(); ++r) {
    auto itp = part_pass.find(lineitem.value(lpk, r));
    if (itp == part_pass.end()) continue;
    auto ito = order_pass.find(lineitem.value(lok, r));
    if (ito == order_pass.end()) continue;
    count += itp->second * ito->second;
  }
  return count;
}

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchDataOptions opts;
    opts.mini_scale = 0.1;  // lineitem ~6000 rows
    MakeTpchDatabase(&db_, opts);
    SyncTpchCatalog(db_, &catalog_);
    query_ = Make2DHQ8a(catalog_);
    BindSelectionConstants(&query_, catalog_, {0.3, 0.4});
    ASSERT_TRUE(query_.Validate(catalog_).ok());
    opt_ = std::make_unique<QueryOptimizer>(query_, catalog_,
                                            CostParams::Postgres());
  }

  ExecContext MakeContext() {
    ExecContext ctx;
    ctx.query = &query_;
    ctx.catalog = &catalog_;
    ctx.db = &db_;
    ctx.cost_model = &opt_->cost_model();
    return ctx;
  }

  Database db_;
  Catalog catalog_;
  QuerySpec query_;
  std::unique_ptr<QueryOptimizer> opt_;
};

TEST_F(ExecutorTest, PlanMatchesReferenceCount) {
  const int64_t expected = ReferenceCount(db_, query_);
  ASSERT_GT(expected, 0);
  const Plan plan = opt_->OptimizeAt({0.3, 0.4});
  ExecContext ctx = MakeContext();
  std::vector<Row> rows;
  const ExecutionOutcome out = ExecutePlan(
      *plan.root, &ctx, std::numeric_limits<double>::infinity(), &rows);
  EXPECT_EQ(out.status, ExecResult::kDone);
  EXPECT_EQ(out.rows_emitted, expected);
  EXPECT_EQ(static_cast<int64_t>(rows.size()), expected);
}

TEST_F(ExecutorTest, AllPlanShapesAgree) {
  // Different injected selectivities force different physical plans; all
  // must return identical cardinalities on the same data.
  const int64_t expected = ReferenceCount(db_, query_);
  std::set<std::string> signatures;
  for (double s1 : {1e-3, 0.05, 1.0}) {
    for (double s2 : {1e-3, 0.05, 1.0}) {
      const Plan plan = opt_->OptimizeAt({s1, s2});
      signatures.insert(plan.signature);
      ExecContext ctx = MakeContext();
      const ExecutionOutcome out = ExecutePlan(
          *plan.root, &ctx, std::numeric_limits<double>::infinity(),
          nullptr);
      EXPECT_EQ(out.status, ExecResult::kDone) << plan.signature;
      EXPECT_EQ(out.rows_emitted, expected) << plan.signature;
    }
  }
  // The sweep must actually have exercised multiple plan shapes.
  EXPECT_GE(signatures.size(), 2u);
}

TEST_F(ExecutorTest, BudgetAborts) {
  const Plan plan = opt_->OptimizeAt({0.3, 0.4});
  ExecContext ctx = MakeContext();
  const ExecutionOutcome out = ExecutePlan(*plan.root, &ctx, 1.0, nullptr);
  EXPECT_EQ(out.status, ExecResult::kAborted);
  EXPECT_GT(out.cost_charged, 1.0);       // tripped just over the budget
  EXPECT_LT(out.cost_charged, 100.0);     // but did not run away
}

TEST_F(ExecutorTest, ChargesApproximateEstimatedCost) {
  // Executing the optimal plan at (0.3, 0.4) with unlimited budget should
  // charge within a small factor of the cost model's estimate at the true
  // location (the meter uses the same constants).
  const Plan plan = opt_->OptimizeAt({0.3, 0.4});
  const double est = opt_->CostPlanAt(*plan.root, {0.3, 0.4});
  ExecContext ctx = MakeContext();
  const ExecutionOutcome out = ExecutePlan(
      *plan.root, &ctx, std::numeric_limits<double>::infinity(), nullptr);
  EXPECT_EQ(out.status, ExecResult::kDone);
  EXPECT_GT(out.cost_charged, est * 0.1);
  EXPECT_LT(out.cost_charged, est * 10.0);
}

TEST_F(ExecutorTest, InstrumentationCountsScanOutput) {
  const Plan plan = opt_->OptimizeAt({0.3, 0.4});
  ExecContext ctx = MakeContext();
  ExecutePlan(*plan.root, &ctx, std::numeric_limits<double>::infinity(),
              nullptr);
  // The part scan node must report tuples_out == filtered part count.
  const ErrorDimension& dim = query_.error_dims[0];  // p_retailprice
  const PlanNode* part_node =
      FindPredicateNode(*plan.root, false, dim.predicate_index);
  ASSERT_NE(part_node, nullptr);
  const NodeCounters* nc = ctx.instr.Find(part_node);
  ASSERT_NE(nc, nullptr);

  const DataTable& part = db_.table("part");
  const auto& f = query_.filters[dim.predicate_index];
  int64_t expected = 0;
  const int col = part.ColumnIndex(f.column);
  for (int64_t r = 0; r < part.num_rows(); ++r) {
    expected += part.value(col, r) < f.constant;
  }
  if (part_node->is_scan()) {
    EXPECT_EQ(nc->tuples_out, expected);
    EXPECT_TRUE(nc->finished);
  } else {
    // Predicate evaluated at a join (index-NL inner): tuple count reflects
    // join output, just assert it ran.
    EXPECT_GE(nc->tuples_out, 0);
  }
}

TEST_F(ExecutorTest, SpilledSubtreeRunsOnlyErrorNode) {
  const Plan plan = opt_->OptimizeAt({1e-3, 1e-3});
  const ErrorDimension& dim = query_.error_dims[0];
  const PlanNode* spill =
      FindPredicateNode(*plan.root, false, dim.predicate_index);
  ASSERT_NE(spill, nullptr);
  ExecContext ctx = MakeContext();
  const ExecutionOutcome out = ExecuteSpilled(
      *spill, &ctx, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out.status, ExecResult::kDone);
  // The spilled run must be cheaper than the full plan's execution.
  ExecContext ctx2 = MakeContext();
  const ExecutionOutcome full = ExecutePlan(
      *plan.root, &ctx2, std::numeric_limits<double>::infinity(), nullptr);
  EXPECT_LE(out.cost_charged, full.cost_charged);
}

TEST_F(ExecutorTest, AbstractPredicateRefusesExecution) {
  QuerySpec abstract = Make2DHQ8a(catalog_);  // constants unbound
  QueryOptimizer opt(abstract, catalog_, CostParams::Postgres());
  const Plan plan = opt.OptimizeAt({0.1, 0.1});
  ExecContext ctx;
  ctx.query = &abstract;
  ctx.catalog = &catalog_;
  ctx.db = &db_;
  ctx.cost_model = &opt.cost_model();
  auto built = BuildExecutor(*plan.root, &ctx);
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ExecutorTest, EmptyResultAtImpossibleFilter) {
  QuerySpec q = Make2DHQ8a(catalog_);
  // Constants below every value: zero selectivity.
  q.filters[0].constant = INT64_MIN + 1;
  q.filters[1].constant = INT64_MIN + 1;
  QueryOptimizer opt(q, catalog_, CostParams::Postgres());
  const Plan plan = opt.OptimizeAt({1e-3, 1e-3});
  ExecContext ctx;
  ctx.query = &q;
  ctx.catalog = &catalog_;
  ctx.db = &db_;
  ctx.cost_model = &opt.cost_model();
  std::vector<Row> rows;
  const ExecutionOutcome out = ExecutePlan(
      *plan.root, &ctx, std::numeric_limits<double>::infinity(), &rows);
  EXPECT_EQ(out.status, ExecResult::kDone);
  EXPECT_EQ(out.rows_emitted, 0);
}

TEST_F(ExecutorTest, DrainOperatorCapsMaterialization) {
  const Plan plan = opt_->OptimizeAt({0.3, 0.4});
  ExecContext ctx = MakeContext();
  ctx.meter.Reset();
  auto built = BuildExecutor(*plan.root, &ctx);
  ASSERT_TRUE(built.ok());
  std::vector<Row> rows;
  int64_t emitted = 0;
  const ExecResult st = DrainOperator(built->get(), &rows, &emitted, 5);
  EXPECT_EQ(st, ExecResult::kDone);
  EXPECT_LE(rows.size(), 5u);
  EXPECT_EQ(emitted, ReferenceCount(db_, query_));
}

}  // namespace
}  // namespace bouquet

// Property-based invariant harness over randomized ESS instances.
//
// The gate turns the paper's theorems into machine-checked properties:
// every randomized instance (random schema, query template, 1D-3D grid,
// parameterization) must satisfy PIC monotonicity (Section 2), the
// geometric isocost ladder (Section 3.1), the Theorem 3 MSO bound with a
// differential brute-force PIC check, the anorexic (1+lambda) swallowing
// bound (VLDB 2007), and serialize->deserialize->re-execute identity —
// plus metamorphic rules (grid refinement, POSP sharding permutation) on a
// sample of instances.
//
// Tier-1 runs 100 instances from a fixed seed; BOUQUET_FUZZ_ITERS scales
// the count for the scheduled fuzz job. The mutation tests prove the
// harness has teeth: a deliberately injected contour-ratio bug (and PIC /
// budget corruptions) must be caught and shrunk to a replayable seed.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "testing/harness.h"

namespace bouquet {
namespace {

// ---------------------------------------------------------------------------
// The fuzz gate
// ---------------------------------------------------------------------------

TEST(PropertyFuzzGate, AllInvariantsHoldOnRandomInstances) {
  FuzzConfig config = FuzzConfig::FromEnv();
  if (config.repro_dir.empty()) {
    config.repro_dir = ::testing::TempDir();
  }
  const FuzzReport report = RunFuzz(config);
  EXPECT_EQ(report.instances, config.iterations);
  EXPECT_TRUE(report.ok()) << report.Summary();
  // On a green run the bound must never be fully consumed (it is a strict
  // worst-case envelope, not a target).
  EXPECT_LE(report.max_bound_utilization, 1.0 + 1e-6);
  std::printf("fuzz gate: %s\n", report.Summary().c_str());
}

TEST(PropertyFuzzGate, RunIsDeterministicFromSeed) {
  FuzzConfig config;
  config.iterations = 5;
  config.metamorphic_every = 0;
  config.differential_samples = 4;
  const FuzzReport a = RunFuzz(config);
  const FuzzReport b = RunFuzz(config);
  EXPECT_EQ(a.instance_checksum, b.instance_checksum);
  EXPECT_EQ(a.total_grid_points, b.total_grid_points);
  EXPECT_DOUBLE_EQ(a.max_bound_utilization, b.max_bound_utilization);
  // A different base seed explores a different instance stream.
  config.base_seed += 1000003;
  const FuzzReport c = RunFuzz(config);
  EXPECT_NE(a.instance_checksum, c.instance_checksum);
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

TEST(PropertyGenerators, InstancesAreValidAndDeterministic) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const FuzzInstance a = GenerateFuzzInstance(seed);
    ASSERT_TRUE(a.query.Validate(a.catalog).ok()) << a.Describe();
    ASSERT_GE(a.query.NumDims(), 1);
    ASSERT_LE(a.query.NumDims(), 3);
    ASSERT_EQ(a.resolutions.size(),
              static_cast<size_t>(a.query.NumDims()));
    uint64_t points = 1;
    for (int r : a.resolutions) {
      ASSERT_GE(r, 3);
      points *= static_cast<uint64_t>(r);
    }
    ASSERT_LE(points, FuzzGenOptions().max_grid_points);
    // Error dimensions reference distinct predicates (injection slots must
    // not alias).
    for (int i = 0; i < a.query.NumDims(); ++i) {
      for (int j = i + 1; j < a.query.NumDims(); ++j) {
        const auto& di = a.query.error_dims[i];
        const auto& dj = a.query.error_dims[j];
        ASSERT_FALSE(di.kind == dj.kind &&
                     di.predicate_index == dj.predicate_index)
            << a.Describe();
      }
    }
    // Regeneration from the same seed is bit-identical in structure.
    const FuzzInstance b = GenerateFuzzInstance(seed);
    ASSERT_EQ(a.Describe(), b.Describe());
    ASSERT_EQ(a.query.joins.size(), b.query.joins.size());
    for (int d = 0; d < a.query.NumDims(); ++d) {
      ASSERT_EQ(a.query.error_dims[d].lo, b.query.error_dims[d].lo);
      ASSERT_EQ(a.query.error_dims[d].hi, b.query.error_dims[d].hi);
    }
  }
}

TEST(PropertyGenerators, OptionBoundsAreHonored) {
  FuzzGenOptions opts;
  opts.max_tables = 2;
  opts.max_dims = 1;
  opts.max_resolution = 5;
  opts.allow_join_dims = false;
  opts.allow_aggregates = false;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const FuzzInstance inst = GenerateFuzzInstance(seed, opts);
    EXPECT_EQ(inst.query.tables.size(), 2u);
    EXPECT_EQ(inst.query.NumDims(), 1);
    EXPECT_FALSE(inst.query.aggregate.enabled);
    EXPECT_EQ(inst.query.error_dims[0].kind, DimKind::kSelection);
  }
}

// ---------------------------------------------------------------------------
// Oracles on fixed seeds (one instance checked end to end, with the
// expensive metamorphic rules forced on)
// ---------------------------------------------------------------------------

TEST(PropertyOracles, FixedSeedsPassEveryOracleIncludingMetamorphic) {
  OracleOptions options;
  options.metamorphic = true;
  for (uint64_t seed : {7ULL, 42ULL, 0xB00ULL}) {
    const FuzzInstance inst = GenerateFuzzInstance(seed);
    const InvariantReport report = CheckInvariants(inst, options);
    EXPECT_TRUE(report.ok())
        << inst.Describe() << " -> " << report.FirstFailure();
    EXPECT_GT(report.num_contours, 0);
    EXPECT_GE(report.rho, 1);
    EXPECT_GE(report.mso, 1.0 - 1e-9);
    EXPECT_LE(report.mso, report.mso_bound_value * (1.0 + 1e-6));
  }
}

// ---------------------------------------------------------------------------
// Mutation tests: the harness must catch injected bugs and shrink them
// ---------------------------------------------------------------------------

// The documented mutation test: a contour whose step cost silently drifts
// off the geometric ladder is detected, shrunk, and dumped as a .repro
// file that replays to the same failure.
TEST(PropertyMutations, ContourRatioBugIsCaughtShrunkAndReplayable) {
  FuzzConfig config;
  config.iterations = 3;
  config.metamorphic_every = 0;
  config.differential_samples = 8;
  config.mutation = FuzzMutation::kContourRatio;
  config.repro_dir = ::testing::TempDir();
  const FuzzReport report = RunFuzz(config);
  ASSERT_FALSE(report.failures.empty())
      << "injected contour-ratio bug was not detected";
  const FuzzFailure& failure = report.failures.front();
  EXPECT_EQ(failure.oracle, "contour_ratio") << failure.detail;

  // Shrinking only ever moves the configuration downward.
  EXPECT_LE(failure.shrunk.gen.max_resolution, failure.spec.gen.max_resolution);
  EXPECT_LE(failure.shrunk.gen.max_tables, failure.spec.gen.max_tables);
  EXPECT_LE(failure.shrunk.gen.max_dims, failure.spec.gen.max_dims);
  EXPECT_EQ(failure.shrunk.seed, failure.spec.seed);

  // The .repro file replays to the same failing oracle.
  ASSERT_FALSE(failure.repro_path.empty());
  Result<ReproSpec> loaded = LoadRepro(failure.repro_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->seed, failure.shrunk.seed);
  EXPECT_EQ(loaded->mutation, FuzzMutation::kContourRatio);
  const InvariantReport replay = CheckRepro(loaded.value());
  EXPECT_FALSE(replay.ok());
  EXPECT_FALSE(replay.contour_ratio.ok) << replay.FirstFailure();
}

TEST(PropertyMutations, PicSpikeIsCaughtByMonotonicityOracle) {
  OracleOptions options;
  options.mutation = FuzzMutation::kPicSpike;
  options.differential_samples = 0;  // isolate the monotonicity oracle
  const FuzzInstance inst = GenerateFuzzInstance(11);
  const InvariantReport report = CheckInvariants(inst, options);
  EXPECT_FALSE(report.pic_monotone.ok) << inst.Describe();
}

TEST(PropertyMutations, DeflatedBudgetsVoidTheGuarantee) {
  OracleOptions options;
  options.mutation = FuzzMutation::kBudgetDeflate;
  options.differential_samples = 0;
  const FuzzInstance inst = GenerateFuzzInstance(11);
  const InvariantReport report = CheckInvariants(inst, options);
  EXPECT_FALSE(report.mso_bound.ok) << inst.Describe();
}

TEST(PropertyMutations, ShrinkerReachesAMinimalConfiguration) {
  ReproSpec spec;
  spec.seed = 23;
  spec.mutation = FuzzMutation::kContourRatio;
  const ShrinkResult shrunk = ShrinkFailure(spec);
  ASSERT_EQ(shrunk.oracle, "contour_ratio") << shrunk.detail;
  EXPECT_GE(shrunk.reductions, 1);
  // The contour-ratio corruption is instance-independent, so shrinking
  // should bottom out at the smallest configuration space.
  EXPECT_EQ(shrunk.minimal.gen.max_resolution, 3);
  EXPECT_EQ(shrunk.minimal.gen.max_tables, 2);
  EXPECT_EQ(shrunk.minimal.gen.max_dims, 1);
}

// ---------------------------------------------------------------------------
// Repro files
// ---------------------------------------------------------------------------

TEST(PropertyRepro, WriteLoadRoundTrip) {
  ReproSpec spec;
  spec.seed = 0xDEADBEEFULL;
  spec.gen.max_tables = 3;
  spec.gen.max_dims = 2;
  spec.gen.max_resolution = 6;
  spec.gen.max_grid_points = 64;
  spec.gen.max_zipf_theta = 0.75;
  spec.gen.allow_join_dims = false;
  spec.gen.allow_aggregates = false;
  spec.mutation = FuzzMutation::kPicSpike;
  const std::string path = ::testing::TempDir() + "/roundtrip.repro";
  ASSERT_TRUE(WriteRepro(spec, "pic_monotone", "detail text", path).ok());
  Result<ReproSpec> loaded = LoadRepro(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->seed, spec.seed);
  EXPECT_EQ(loaded->gen.max_tables, spec.gen.max_tables);
  EXPECT_EQ(loaded->gen.max_dims, spec.gen.max_dims);
  EXPECT_EQ(loaded->gen.max_resolution, spec.gen.max_resolution);
  EXPECT_EQ(loaded->gen.max_grid_points, spec.gen.max_grid_points);
  EXPECT_DOUBLE_EQ(loaded->gen.max_zipf_theta, spec.gen.max_zipf_theta);
  EXPECT_EQ(loaded->gen.allow_join_dims, spec.gen.allow_join_dims);
  EXPECT_EQ(loaded->gen.allow_aggregates, spec.gen.allow_aggregates);
  EXPECT_EQ(loaded->mutation, spec.mutation);
}

TEST(PropertyRepro, LoadRejectsMalformedFiles) {
  EXPECT_FALSE(LoadRepro("/nonexistent/path.repro").ok());
  const std::string path = ::testing::TempDir() + "/bad.repro";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("max_tables 3\n", f);  // no seed
    std::fclose(f);
  }
  EXPECT_FALSE(LoadRepro(path).ok());
}

// Replays a .repro file named by BOUQUET_REPRO (the documented workflow for
// debugging a red fuzz gate); green once the underlying bug is fixed.
TEST(PropertyRepro, ReplayReproFromEnv) {
  const char* path = std::getenv("BOUQUET_REPRO");
  if (path == nullptr) {
    GTEST_SKIP() << "set BOUQUET_REPRO=<file.repro> to replay a failure";
  }
  Result<ReproSpec> spec = LoadRepro(path);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const InvariantReport report = CheckRepro(spec.value());
  EXPECT_TRUE(report.ok()) << report.FirstFailure();
}

}  // namespace
}  // namespace bouquet

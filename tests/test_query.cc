// Tests for query/: QuerySpec validation and JoinGraph analysis.

#include <gtest/gtest.h>

#include "query/join_graph.h"
#include "query/query_spec.h"

namespace bouquet {
namespace {

Catalog ThreeTableCatalog() {
  Catalog c;
  c.AddTable(Catalog::MakeTable("a", 100, 64, {"k", "x"}, 100));
  c.AddTable(Catalog::MakeTable("b", 200, 64, {"k", "ak", "y"}, 200));
  c.AddTable(Catalog::MakeTable("c", 300, 64, {"k", "bk"}, 300));
  return c;
}

JoinPredicate J(const std::string& lt, const std::string& lc,
                const std::string& rt, const std::string& rc) {
  return JoinPredicate{lt, lc, rt, rc, -1.0};
}

QuerySpec ChainQuery() {
  QuerySpec q;
  q.name = "chain3";
  q.tables = {"a", "b", "c"};
  q.joins = {J("a", "k", "b", "ak"), J("b", "k", "c", "bk")};
  return q;
}

TEST(QuerySpecTest, ValidChain) {
  const Catalog cat = ThreeTableCatalog();
  EXPECT_TRUE(ChainQuery().Validate(cat).ok());
}

TEST(QuerySpecTest, RejectsUnknownTable) {
  const Catalog cat = ThreeTableCatalog();
  QuerySpec q = ChainQuery();
  q.tables.push_back("nope");
  EXPECT_FALSE(q.Validate(cat).ok());
}

TEST(QuerySpecTest, RejectsDisconnectedGraph) {
  const Catalog cat = ThreeTableCatalog();
  QuerySpec q = ChainQuery();
  q.joins.pop_back();  // c now disconnected
  const Status s = q.Validate(cat);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(QuerySpecTest, RejectsUnknownColumn) {
  const Catalog cat = ThreeTableCatalog();
  QuerySpec q = ChainQuery();
  q.filters.push_back({"a", "missing", CompareOp::kLess, 5, -1.0});
  EXPECT_FALSE(q.Validate(cat).ok());
}

TEST(QuerySpecTest, RejectsBadDimIndex) {
  const Catalog cat = ThreeTableCatalog();
  QuerySpec q = ChainQuery();
  ErrorDimension d;
  d.kind = DimKind::kJoin;
  d.predicate_index = 7;
  q.error_dims.push_back(d);
  EXPECT_FALSE(q.Validate(cat).ok());
}

TEST(QuerySpecTest, RejectsBadDimRange) {
  const Catalog cat = ThreeTableCatalog();
  QuerySpec q = ChainQuery();
  ErrorDimension d;
  d.kind = DimKind::kJoin;
  d.predicate_index = 0;
  d.lo = 0.0;  // must be > 0
  d.hi = 0.5;
  q.error_dims.push_back(d);
  EXPECT_FALSE(q.Validate(cat).ok());
  q.error_dims[0].lo = 0.9;
  q.error_dims[0].hi = 0.5;  // lo > hi
  EXPECT_FALSE(q.Validate(cat).ok());
}

TEST(QuerySpecTest, RejectsEmptyQuery) {
  const Catalog cat = ThreeTableCatalog();
  QuerySpec q;
  EXPECT_FALSE(q.Validate(cat).ok());
}

TEST(QuerySpecTest, RejectsSelfJoin) {
  const Catalog cat = ThreeTableCatalog();
  QuerySpec q = ChainQuery();
  q.joins.push_back(J("a", "k", "a", "x"));
  EXPECT_FALSE(q.Validate(cat).ok());
}

TEST(QuerySpecTest, TableIndex) {
  const QuerySpec q = ChainQuery();
  EXPECT_EQ(q.TableIndex("a"), 0);
  EXPECT_EQ(q.TableIndex("c"), 2);
  EXPECT_EQ(q.TableIndex("zz"), -1);
}

TEST(QuerySpecTest, SelectionPredicateConstant) {
  SelectionPredicate f;
  EXPECT_FALSE(f.has_constant());
  f.constant = 5;
  EXPECT_TRUE(f.has_constant());
}

TEST(CompareOpTest, Names) {
  EXPECT_STREQ(CompareOpName(CompareOp::kLess), "<");
  EXPECT_STREQ(CompareOpName(CompareOp::kEqual), "=");
  EXPECT_STREQ(CompareOpName(CompareOp::kGreaterEqual), ">=");
}

// ---------------------------------------------------------------------------
// JoinGraph
// ---------------------------------------------------------------------------

QuerySpec NTableQuery(int n, const std::vector<std::pair<int, int>>& edges) {
  QuerySpec q;
  for (int i = 0; i < n; ++i) q.tables.push_back("t" + std::to_string(i));
  for (auto [a, b] : edges) {
    q.joins.push_back(J(q.tables[a], "k", q.tables[b], "k"));
  }
  return q;
}

TEST(JoinGraphTest, Connectivity) {
  const QuerySpec q = NTableQuery(4, {{0, 1}, {1, 2}, {2, 3}});
  const JoinGraph g(q);
  EXPECT_TRUE(g.IsConnectedSubset(0b1111));
  EXPECT_TRUE(g.IsConnectedSubset(0b0111));
  EXPECT_TRUE(g.IsConnectedSubset(0b0001));
  EXPECT_FALSE(g.IsConnectedSubset(0b1001));  // t0 and t3 not adjacent
  EXPECT_FALSE(g.IsConnectedSubset(0b0101));
  EXPECT_FALSE(g.IsConnectedSubset(0));
}

TEST(JoinGraphTest, CrossingJoins) {
  const QuerySpec q = NTableQuery(4, {{0, 1}, {1, 2}, {2, 3}});
  const JoinGraph g(q);
  EXPECT_TRUE(g.HasCrossingJoin(0b0011, 0b0100));
  EXPECT_FALSE(g.HasCrossingJoin(0b0001, 0b1000));
  EXPECT_EQ(g.CrossingJoins(0b0011, 0b1100), (std::vector<int>{1}));
  EXPECT_EQ(g.InternalJoins(0b0111), (std::vector<int>{0, 1}));
}

TEST(JoinGraphTest, GeometryChain) {
  EXPECT_EQ(JoinGraph(NTableQuery(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}))
                .Geometry(),
            "chain");
}

TEST(JoinGraphTest, GeometryStar) {
  EXPECT_EQ(JoinGraph(NTableQuery(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}}))
                .Geometry(),
            "star");
}

TEST(JoinGraphTest, GeometryBranch) {
  // Tree, max degree 3, not a star (n=6 so star center would need deg 5).
  EXPECT_EQ(JoinGraph(NTableQuery(
                          6, {{0, 1}, {1, 2}, {1, 3}, {3, 4}, {3, 5}}))
                .Geometry(),
            "branch");
}

TEST(JoinGraphTest, GeometryCycle) {
  EXPECT_EQ(JoinGraph(NTableQuery(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}))
                .Geometry(),
            "cycle");
}

TEST(JoinGraphTest, GeometryTwoTableChain) {
  EXPECT_EQ(JoinGraph(NTableQuery(2, {{0, 1}})).Geometry(), "chain");
}

TEST(JoinGraphTest, JoinEndpoints) {
  const QuerySpec q = NTableQuery(3, {{0, 2}});
  const JoinGraph g(q);
  const auto [l, r] = g.JoinEndpoints(0);
  EXPECT_EQ(l, 0);
  EXPECT_EQ(r, 2);
}

}  // namespace
}  // namespace bouquet

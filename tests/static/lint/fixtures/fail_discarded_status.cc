// Negative lint fixture: the (void)-cast loophole bouquet-discarded-status
// closes. Plain discards of Status/Result are already -Wunused-result
// warnings via [[nodiscard]]; the cast is the silent escape, so an
// unjustified cast is a finding and a NOLINT-justified one is not.
// See fail_determinism.cc for the fixture conventions.

#include "common/status.h"

namespace bouquet_lint_fixture {

bouquet::Status MightFail();

void IgnoreSilently() {
  (void)MightFail();  // expect-lint: bouquet-discarded-status
}

void IgnoreWithReason() {
  // NOLINTNEXTLINE(bouquet-discarded-status): fixture demonstrates the escape
  (void)MightFail();
}

bouquet::Status Propagate() { return MightFail(); }

}  // namespace bouquet_lint_fixture

// Negative lint fixture: every mutation shape bouquet-charge-order bans on
// a BOUQUET_CHARGED field, plus the bulk-reduction ban. The single-add and
// literal-reset forms are included as in-file negatives (must NOT fire).
// See fail_determinism.cc for the fixture conventions.

#include <numeric>
#include <vector>

#include "common/lint.h"

namespace bouquet_lint_fixture {

class Meter {
 public:
  // The only sanctioned accrual: one scalar add per statement.
  void Charge(double unit) { charged_ += unit; }

  void ChargeBoth(double a, double b) {
    charged_ += a + b;  // expect-lint: bouquet-charge-order
  }

  void Overwrite(double snapshot) {
    charged_ = snapshot * 2.0;  // expect-lint: bouquet-charge-order
  }

  void Scale(double factor) {
    charged_ *= factor;  // expect-lint: bouquet-charge-order
  }

  double BulkReplay(const std::vector<double>& units) {
    return std::accumulate(units.begin(), units.end(), 0.0);  // expect-lint: bouquet-charge-order
  }

  // Literal reset is sanctioned (Reset()/zero-init).
  void Reset() { charged_ = 0.0; }

  double charged() const { return charged_; }

 private:
  BOUQUET_CHARGED double charged_ = 0.0;
};

}  // namespace bouquet_lint_fixture

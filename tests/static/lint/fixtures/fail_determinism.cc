// Negative lint fixture: every nondeterministic source bouquet-determinism
// bans, one per construct, in an accounting-scoped path (tests/static/lint
// opts into the module scope). Each `expect-lint:` marker names the check
// that must fire on that line; scripts/check_lint_fixtures.py fails if the
// engine reports anything more or less.
//
// The fixture must COMPILE (it is a lint violation, not a compile error) —
// the configure step try_compiles it like the thread-safety probes.

#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <unordered_map>

#include "common/lint.h"

namespace bouquet_lint_fixture {

struct Widget {
  int weight = 0;
};

// Pointer-keyed ordered container: iteration order tracks the allocator.
std::map<Widget*, int> by_widget;  // expect-lint: bouquet-determinism

int WeightOf(Widget* w) { return by_widget[w]; }

double ChargeFromClock() {
  // A clock read feeding a "charge" — the canonical MSO violation.
  auto t = std::chrono::steady_clock::now();  // expect-lint: bouquet-determinism
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double ChargeFromEnvironment() {
  const char* knob = std::getenv("BOUQUET_FUDGE");  // expect-lint: bouquet-determinism
  return knob == nullptr ? 1.0 : 2.0;
}

int SeedFromRand() {
  return std::rand();  // expect-lint: bouquet-determinism
}

class HashOrderReplay {
 public:
  void Add(const std::string& key, double v) { charges_[key] += v; }

  // Iterating the hash map in storage order: the emitted sequence (and any
  // abort-truncated prefix of it) depends on the standard library.
  double Total() const {
    double total = 0.0;
    for (const auto& [key, value] : charges_) {  // expect-lint: bouquet-determinism
      total += value;
    }
    return total;
  }

 private:
  std::unordered_map<std::string, double> charges_;
};

}  // namespace bouquet_lint_fixture

// Positive control for the bouquet-* lint gate: exercises every escape
// hatch and sanctioned pattern — annotated wall-clock helper, NOLINT'd
// replay writeback, drain-into-sort hash-map emission, bound PageGuard,
// handled Status, schema-known span name — and must produce ZERO findings.
// If this fixture starts firing, an escape hatch rotted, and every
// justified use in src/ would be a false positive.

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/lint.h"
#include "common/status.h"
#include "obs/trace.h"
#include "storage/buffer_manager.h"

namespace bouquet_lint_fixture {

class CleanMeter {
 public:
  // Sanctioned accrual: one scalar add per statement.
  void Charge(double unit) { charged_ += unit; }

  // Sanctioned literal reset.
  void Reset() { charged_ = 0.0; }

  // The one sanctioned non-add write: a replay writeback, NOLINT'd with a
  // reason exactly as CostMeter::RestoreCharged does.
  void Restore(double snapshot) {
    charged_ = snapshot;  // NOLINT(bouquet-charge-order): replay writeback
  }

  double charged() const { return charged_; }

 private:
  BOUQUET_CHARGED double charged_ = 0.0;
};

// Telemetry-only wall clock behind the annotation: the duration feeds a
// stats struct, never charged cost or replay state.
BOUQUET_NONDETERMINISM_OK double ElapsedSeconds(
    std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

class SortedEmitter {
 public:
  void Add(const std::string& key, double v) { groups_[key] += v; }

  // Sanctioned pattern for unordered state: drain into a vector and sort
  // before any order-sensitive consumer (or abort point) can see it.
  std::vector<std::pair<std::string, double>> Drain() {
    // NOLINTNEXTLINE(bouquet-determinism): drained into the sort below
    std::vector<std::pair<std::string, double>> rows(groups_.begin(),
                                                     groups_.end());
    std::sort(rows.begin(), rows.end());
    groups_.clear();
    return rows;
  }

 private:
  std::unordered_map<std::string, double> groups_;
};

uint8_t BoundPageRead(bouquet::storage::BufferManager& bm,
                      bouquet::storage::PageId id) {
  bouquet::storage::PageGuard guard = bm.Pin(id);
  return guard.valid() ? guard.data()[0] : 0;
}

bouquet::Status HandledStatus(bouquet::Status s) {
  if (!s.ok()) return s;
  return bouquet::Status::Ok();
}

void KnownSpanName(bouquet::obs::Tracer* tracer) {
  auto span = bouquet::obs::Tracer::Begin(tracer, "exec.node");
}

}  // namespace bouquet_lint_fixture

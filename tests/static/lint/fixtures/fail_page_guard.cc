// Negative lint fixture: the pin-discipline shapes bouquet-page-guard bans
// outside src/storage/buffer_manager.* — temporary-consumed pins, unbound
// pins, and direct Unpin() calls. A correctly bound PageGuard is included
// as an in-file negative (must NOT fire).
// See fail_determinism.cc for the fixture conventions.

#include <cstdint>

#include "storage/buffer_manager.h"
#include "storage/page.h"

namespace bouquet_lint_fixture {

using bouquet::storage::BufferManager;
using bouquet::storage::PageGuard;
using bouquet::storage::PageId;

// Stand-in with a public Unpin so the direct-call violation still compiles:
// the real BufferManager keeps Unpin private, and the lint is the backstop
// for friend classes and future refactors that would re-expose it.
struct LegacyPool {
  void Unpin(PageId, bool) {}
};

uint8_t PeekFirstByte(BufferManager& bm, PageId id) {
  // The pin is released at the ';' — the pointer read races eviction.
  return bm.Pin(id).data()[0];  // expect-lint: bouquet-page-guard
}

void WarmCache(BufferManager& bm, PageId id) {
  // Discarded guard: a pin/unpin pulse that only perturbs pin telemetry.
  bm.Pin(id);  // expect-lint: bouquet-page-guard
}

void LegacyRelease(LegacyPool& pool, PageId id) {
  pool.Unpin(id, false);  // expect-lint: bouquet-page-guard
}

uint8_t BoundRead(BufferManager& bm, PageId id) {
  PageGuard guard = bm.Pin(id);
  return guard.valid() ? guard.data()[0] : 0;
}

}  // namespace bouquet_lint_fixture

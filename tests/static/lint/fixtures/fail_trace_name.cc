// Negative lint fixture: span/metric name literals that are missing from
// scripts/trace_schema.json, and a non-literal span name that defeats the
// schema check entirely. A known-name span is included as an in-file
// negative (must NOT fire).
// See fail_determinism.cc for the fixture conventions.

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bouquet_lint_fixture {

using bouquet::obs::MetricsRegistry;
using bouquet::obs::Span;
using bouquet::obs::Tracer;

void UnknownNames(Tracer* tracer, MetricsRegistry* metrics) {
  auto span = Tracer::Begin(tracer, "exec.mystery_phase");  // expect-lint: bouquet-trace-name
  metrics->GetCounter("bouquet_typo_total", "help text")->Inc();  // expect-lint: bouquet-trace-name
}

void NonLiteralName(Tracer* tracer, const char* name) {
  auto span = tracer->StartSpan(name);  // expect-lint: bouquet-trace-name
}

void KnownName(Tracer* tracer) {
  auto span = Tracer::Begin(tracer, "exec.node");
}

}  // namespace bouquet_lint_fixture

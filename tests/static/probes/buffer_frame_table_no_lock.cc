// NEGATIVE probe: touches a buffer-manager-style frame table without the
// pool mutex, modeled on src/storage/buffer_manager.h (frames_, the policy
// state, and the stats block share one capability-annotated Mutex; a frame
// lookup outside it races eviction freeing the frame under the reader).
//
// Under enforcement (Clang + -Werror=thread-safety) this file MUST NOT
// compile — if it does, the thread-safety gate has silently rotted (see
// tests/static/CMakeLists.txt and check_probes.cmake). Without enforcement
// (GCC, or BOUQUET_THREAD_SAFETY=OFF) it must compile cleanly, proving the
// annotations are true no-ops.

#include <cstdint>
#include <unordered_map>

#include "common/synchronization.h"

namespace {

struct Frame {
  int pins = 0;
  bool dirty = false;
};

class MiniBufferPool {
 public:
  // BUG (deliberate): pin bump through the frame table with mu_ not held —
  // eviction running under the lock can free the frame mid-update.
  void UnlockedPin(uint64_t key) {
    Frame& f = frames_[key];
    ++f.pins;
    ++pinned_;
  }

 private:
  bouquet::Mutex mu_;
  std::unordered_map<uint64_t, Frame> frames_ GUARDED_BY(mu_);
  uint64_t pinned_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int ProbeEntry() {
  MiniBufferPool pool;
  pool.UnlockedPin(42);
  return 0;
}

// NEGATIVE probe: calls a REQUIRES(mu) helper without holding the mutex.
//
// Under enforcement (Clang + -Werror=thread-safety) this file MUST NOT
// compile; without enforcement it must compile cleanly. This mirrors the
// *Locked() helper convention used by BouquetService / BouquetCache.

#include "common/synchronization.h"

namespace {

class Queue {
 public:
  // BUG (deliberate): capability precondition not satisfied.
  void Push() { PushLocked(); }

 private:
  void PushLocked() REQUIRES(mu_) { ++depth_; }

  bouquet::Mutex mu_;
  int depth_ GUARDED_BY(mu_) = 0;
};

}  // namespace

void ProbeEntry() {
  Queue q;
  q.Push();
}

// NEGATIVE probe: reads a GUARDED_BY field without holding its mutex.
//
// Under enforcement (Clang + -Werror=thread-safety) this file MUST NOT
// compile — if it does, the thread-safety gate has silently rotted (see
// tests/static/CMakeLists.txt and check_probes.cmake). Without enforcement
// (GCC, or BOUQUET_THREAD_SAFETY=OFF) it must compile cleanly, proving the
// annotations are true no-ops.

#include "common/synchronization.h"

namespace {

class Counter {
 public:
  // BUG (deliberate): reads value_ with mu_ not held.
  int UnlockedRead() { return value_; }

 private:
  bouquet::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int ProbeEntry() {
  Counter c;
  return c.UnlockedRead();
}

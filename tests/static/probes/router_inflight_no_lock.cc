// NEGATIVE probe: mutates router-style inflight/outbox state without the
// router mutex, modeled on src/net/router.h (inflight_batches_, the open
// batch map, and the queued counter are all GUARDED_BY(mu_); the flush
// path must claim the inflight slot and detach the batch under the lock,
// then execute outside it).
//
// Under enforcement (Clang + -Werror=thread-safety) this file MUST NOT
// compile — if it does, the thread-safety gate has silently rotted (see
// tests/static/CMakeLists.txt and check_probes.cmake). Without enforcement
// (GCC, or BOUQUET_THREAD_SAFETY=OFF) it must compile cleanly, proving the
// annotations are true no-ops.

#include <map>
#include <string>
#include <vector>

#include "common/synchronization.h"

namespace {

class MiniRouter {
 public:
  // BUG (deliberate): claims an inflight slot and detaches the batch with
  // mu_ not held — the exact race the real router's FlushLocked prevents.
  std::vector<int> UnlockedFlush(const std::string& key) {
    ++inflight_batches_;
    std::vector<int> batch = std::move(outbox_[key]);
    outbox_.erase(key);
    queued_ -= batch.size();
    return batch;
  }

 private:
  bouquet::Mutex mu_;
  std::map<std::string, std::vector<int>> outbox_ GUARDED_BY(mu_);
  int inflight_batches_ GUARDED_BY(mu_) = 0;
  size_t queued_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int ProbeEntry() {
  MiniRouter r;
  return static_cast<int>(r.UnlockedFlush("t").size());
}

// POSITIVE control probe: disciplined use of every wrapper the negative
// probes rely on. This must compile under BOTH modes — if it fails under
// enforcement, a negative probe's failure means the harness (include paths,
// flags, the wrappers themselves) is broken, not that the gate works.

#include "common/synchronization.h"

namespace {

class Registry {
 public:
  void Increment() {
    bouquet::MutexLock lock(&mu_);
    ++value_;
  }

  int Snapshot() {
    bouquet::MutexLock lock(&mu_);
    return value_;
  }

  // RETURN_CAPABILITY lets callers lock through an accessor.
  bouquet::Mutex* mutex() RETURN_CAPABILITY(mu_) { return &mu_; }

  int SnapshotViaAccessor() {
    bouquet::MutexLock lock(mutex());
    return value_;
  }

  void WaitNonZero() {
    bouquet::MutexLock lock(&mu_);
    while (value_ == 0) cv_.Wait(&mu_);
  }

  void SignalAll() { cv_.NotifyAll(); }

 private:
  bouquet::Mutex mu_;
  bouquet::CondVar cv_;
  int value_ GUARDED_BY(mu_) = 0;
};

class SharedRegistry {
 public:
  int Read() {
    bouquet::ReaderMutexLock lock(&smu_);
    return shared_value_;
  }

  void Write(int v) EXCLUDES(smu_) {
    bouquet::WriterMutexLock lock(&smu_);
    shared_value_ = v;
  }

 private:
  bouquet::SharedMutex smu_;
  int shared_value_ GUARDED_BY(smu_) = 0;
};

}  // namespace

int ProbeEntry() {
  Registry r;
  r.Increment();
  r.SignalAll();
  SharedRegistry s;
  s.Write(7);
  return r.Snapshot() + r.SnapshotViaAccessor() + s.Read();
}

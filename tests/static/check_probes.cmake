# Meta-test for the negative-compilation harness (run via `ctest`, see
# tests/static/CMakeLists.txt). Recompiles every probe in BOTH modes and
# asserts the full matrix:
#
#                      | control_*.cc | negative probes
#   enforcement OFF    |   compiles   |   compiles        (macros no-op)
#   enforcement ON(*)  |   compiles   |   MUST NOT compile
#
#   (*) only checkable when the compiler is Clang; on other compilers the
#       ON half is reported as skipped (the CI static-analysis job runs
#       this test under Clang, so the skip never hides a rotted gate on
#       the gating platform).
#
# Usage:
#   cmake -DCXX_COMPILER=... -DCXX_COMPILER_ID=... -DSRC_INCLUDE_DIR=...
#         -DPROBE_DIR=... -DWORK_DIR=... -P check_probes.cmake

foreach(v CXX_COMPILER CXX_COMPILER_ID SRC_INCLUDE_DIR PROBE_DIR WORK_DIR)
  if(NOT DEFINED ${v})
    message(FATAL_ERROR "check_probes.cmake: missing -D${v}")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})
file(GLOB _probes RELATIVE ${PROBE_DIR} ${PROBE_DIR}/*.cc)
if(NOT _probes)
  message(FATAL_ERROR "no probes found in ${PROBE_DIR}")
endif()

set(_base_flags -std=c++20 -I${SRC_INCLUDE_DIR} -c)
set(_enforce_flags -Wthread-safety -Wthread-safety-beta
                   -Werror=thread-safety)

# compile(<probe> <enforce: ON|OFF> <result-var>)
function(compile_probe probe enforce out_var)
  set(_flags ${_base_flags})
  if(enforce)
    list(APPEND _flags ${_enforce_flags})
  endif()
  execute_process(
      COMMAND ${CXX_COMPILER} ${_flags} ${PROBE_DIR}/${probe}
              -o ${WORK_DIR}/probe.o
      RESULT_VARIABLE _rc
      OUTPUT_VARIABLE _out
      ERROR_VARIABLE _err)
  if(_rc EQUAL 0)
    set(${out_var} TRUE PARENT_SCOPE)
  else()
    set(${out_var} FALSE PARENT_SCOPE)
    set(${out_var}_DIAG "${_err}" PARENT_SCOPE)
  endif()
endfunction()

set(_failures "")

foreach(p ${_probes})
  # OFF half: every probe compiles with the plain toolchain.
  compile_probe(${p} FALSE _off_ok)
  if(NOT _off_ok)
    list(APPEND _failures
        "'${p}' does not compile without enforcement (macros not no-ops?):\n${_off_ok_DIAG}")
  endif()

  # ON half: needs Clang for the analysis to exist.
  if(CXX_COMPILER_ID MATCHES "Clang")
    compile_probe(${p} TRUE _on_ok)
    if(p MATCHES "^control_")
      if(NOT _on_ok)
        list(APPEND _failures
            "control '${p}' fails under enforcement (harness broken):\n${_on_ok_DIAG}")
      endif()
    else()
      if(_on_ok)
        list(APPEND _failures
            "negative probe '${p}' COMPILES under -Werror=thread-safety — the gate has rotted")
      endif()
    endif()
  endif()
endforeach()

if(NOT CXX_COMPILER_ID MATCHES "Clang")
  message(STATUS
      "check_probes: compiler is ${CXX_COMPILER_ID}; enforcement half "
      "skipped (verified the no-op half only — run under Clang, as the CI "
      "static-analysis job does, to check rejection)")
endif()

if(_failures)
  string(JOIN "\n" _msg ${_failures})
  message(FATAL_ERROR "negative-compilation gate violations:\n${_msg}")
endif()
message(STATUS "check_probes: all probe expectations hold")

// Tests for common/: RNG, math utilities, string utilities, Status/Result.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace bouquet {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextUint64InRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, NextInt64Bounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt64(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, NextInt64SingleValue) {
  Rng rng(7);
  EXPECT_EQ(rng.NextInt64(42, 42), 42);
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(11);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.NextBool(0.3);
  EXPECT_NEAR(trues / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ZipfUniformWhenThetaZero) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[rng.NextZipf(10, 0.0) - 1]++;
  for (int c : counts) EXPECT_NEAR(c, 1000, 200);
}

TEST(RngTest, ZipfSkewsTowardSmallValues) {
  Rng rng(13);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextZipf(1000, 0.99);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
    if (v == 1) ++ones;
  }
  // Under theta~1 the most frequent value takes >> 1/1000 of the mass.
  EXPECT_GT(ones, 500);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(19);
  const auto perm = rng.Permutation(100);
  std::set<uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

// ---------------------------------------------------------------------------
// math_util
// ---------------------------------------------------------------------------

TEST(MathTest, LogSpaceEndpoints) {
  const auto v = LogSpace(0.001, 1.0, 10);
  ASSERT_EQ(v.size(), 10u);
  EXPECT_DOUBLE_EQ(v.front(), 0.001);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
}

TEST(MathTest, LogSpaceGeometricSpacing) {
  const auto v = LogSpace(1.0, 1000.0, 4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-9);
}

TEST(MathTest, LogSpaceSingle) {
  const auto v = LogSpace(0.5, 2.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
}

TEST(MathTest, LogSpaceMonotone) {
  const auto v = LogSpace(1e-4, 1.0, 100);
  for (size_t i = 1; i < v.size(); ++i) EXPECT_GT(v[i], v[i - 1]);
}

TEST(MathTest, LinSpaceBasics) {
  const auto v = LinSpace(0.0, 10.0, 11);
  ASSERT_EQ(v.size(), 11u);
  EXPECT_DOUBLE_EQ(v[3], 3.0);
}

TEST(MathTest, GeometricStepsBoundaryConditions) {
  // Section 3.1: IC_m == cmax, and IC_1/r < cmin <= IC_1.
  for (double ratio : {1.5, 2.0, 3.0}) {
    for (double cmax : {1e4, 5.7e5, 2.0}) {
      const double cmin = 1.0;
      const auto steps = GeometricSteps(cmin, cmax, ratio);
      ASSERT_FALSE(steps.empty());
      EXPECT_DOUBLE_EQ(steps.back(), cmax);
      EXPECT_GE(steps.front() * (1 + 1e-12), cmin);
      EXPECT_LT(steps.front() / ratio, cmin);
      for (size_t i = 1; i < steps.size(); ++i) {
        EXPECT_NEAR(steps[i] / steps[i - 1], ratio, 1e-9);
      }
    }
  }
}

TEST(MathTest, GeometricStepsDegenerate) {
  const auto steps = GeometricSteps(5.0, 5.0, 2.0);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_DOUBLE_EQ(steps[0], 5.0);
}

TEST(MathTest, GeometricStepsDoubling) {
  const auto steps = GeometricSteps(1.0, 100.0, 2.0);
  // ceil(log2(100)) = 7 steps; 100/2^6 = 1.5625 >= 1 > 0.78.
  ASSERT_EQ(steps.size(), 7u);
  EXPECT_DOUBLE_EQ(steps.back(), 100.0);
}

TEST(MathTest, LowerIndex) {
  const std::vector<double> v = {1.0, 2.0, 4.0, 8.0};
  EXPECT_EQ(LowerIndex(v, 0.5), -1);
  EXPECT_EQ(LowerIndex(v, 1.0), 0);
  EXPECT_EQ(LowerIndex(v, 3.0), 1);
  EXPECT_EQ(LowerIndex(v, 8.0), 3);
  EXPECT_EQ(LowerIndex(v, 100.0), 3);
}

TEST(MathTest, ApproxEqual) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.01));
  EXPECT_TRUE(ApproxEqual(1e9, 1e9 + 1.0, 1e-8));
}

TEST(MathTest, TheoremOneBoundMinimumAtTwo) {
  // r^2/(r-1) is minimized at r = 2 with value 4.
  EXPECT_DOUBLE_EQ(TheoremOneBound(2.0), 4.0);
  for (double r : {1.2, 1.5, 1.9, 2.1, 3.0, 5.0}) {
    EXPECT_GT(TheoremOneBound(r), 4.0) << "r=" << r;
  }
}

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---------------------------------------------------------------------------
// str_util
// ---------------------------------------------------------------------------

TEST(StrTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StrTest, StrPrintf) {
  EXPECT_EQ(StrPrintf("%d-%s", 7, "x"), "7-x");
  // Long output exceeding any small static buffer.
  const std::string big(500, 'y');
  EXPECT_EQ(StrPrintf("%s", big.c_str()).size(), 500u);
}

TEST(StrTest, FormatPct) {
  EXPECT_EQ(FormatPct(0.05), "5%");
  EXPECT_EQ(FormatPct(0.00015), "0.015%");
}

TEST(StrTest, FormatSciZero) { EXPECT_EQ(FormatSci(0.0), "0"); }

}  // namespace
}  // namespace bouquet

#!/usr/bin/env python3
"""Unit tests for the CI checker scripts in scripts/.

Each checker guards a CI job; a checker that silently passes bad input is a
gate that rotted open, and one that rejects good input blocks CI for no
reason. These tests drive every checker as a subprocess — the same
interface CI uses — against crafted passing and failing inputs and assert
on the exit code plus the specific failure text, so a checker that starts
failing for the WRONG reason is also caught.

Covered: check_compile_smoke.py, check_serve_smoke.py, check_exec_smoke.py,
check_storage_smoke.py, check_feedback_smoke.py, check_trace_schema.py,
check_lint_fixtures.py.
Stdlib only (unittest); registered in ctest as test_check_scripts.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
SCRIPTS = os.path.join(REPO, "scripts")


def run_checker(script, *args):
    return subprocess.run(
        [sys.executable, os.path.join(SCRIPTS, script)] + list(args),
        capture_output=True, text=True)


class CheckerTestCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmp = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def write_json(self, name, doc):
        path = os.path.join(self.tmp, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def write_text(self, name, text):
        path = os.path.join(self.tmp, name)
        with open(path, "w") as f:
            f.write(text)
        return path

    def assert_pass(self, proc):
        self.assertEqual(
            proc.returncode, 0,
            f"expected pass, got {proc.returncode}:\n{proc.stdout}\n"
            f"{proc.stderr}")

    def assert_fail(self, proc, needle):
        self.assertEqual(
            proc.returncode, 1,
            f"expected failure, got {proc.returncode}:\n{proc.stdout}\n"
            f"{proc.stderr}")
        self.assertIn(needle, proc.stdout + proc.stderr,
                      f"failure did not mention {needle!r}:\n{proc.stdout}\n"
                      f"{proc.stderr}")


class CompileSmokeTest(CheckerTestCase):
    def bench(self):
        return {"templates": [{
            "name": "posp_2d_res100",
            "points": 100,
            "incremental": {"dp_calls": 50, "audit_failures": 0},
            "memoryless": {"dp_calls": 100},
        }]}

    def baseline(self):
        return {"templates": [{"name": "posp_2d_res100",
                               "max_dp_calls": 60}]}

    def check(self, bench, baseline):
        return run_checker("check_compile_smoke.py",
                           self.write_json("bench.json", bench),
                           self.write_json("baseline.json", baseline))

    def test_passes_within_ceiling(self):
        self.assert_pass(self.check(self.bench(), self.baseline()))

    def test_fails_on_dp_call_regression(self):
        bench = self.bench()
        bench["templates"][0]["incremental"]["dp_calls"] = 61
        self.assert_fail(self.check(bench, self.baseline()),
                         "fast-path coverage regressed")

    def test_fails_on_audit_failures(self):
        bench = self.bench()
        bench["templates"][0]["incremental"]["audit_failures"] = 2
        self.assert_fail(self.check(bench, self.baseline()),
                         "audit")

    def test_fails_when_memoryless_skips_points(self):
        bench = self.bench()
        bench["templates"][0]["memoryless"]["dp_calls"] = 99
        self.assert_fail(self.check(bench, self.baseline()),
                         "not memoryless")

    def test_fails_on_missing_template(self):
        self.assert_fail(self.check({"templates": []}, self.baseline()),
                         "missing")


class ServeSmokeTest(CheckerTestCase):
    def bench(self):
        return {
            "serve": {"requests": 200, "completed": 200, "errors": 0,
                      "qps": 500.0, "p50_ms": 1.0, "p99_ms": 5.0,
                      "compilations": 2, "mean_batch_size": 4.0},
            "overload": {"requests": 100, "completed": 100, "degraded": 30,
                         "shed": 30, "peak_queue_depth": 8,
                         "max_queue_depth": 8, "compilations": 2},
        }

    def baseline(self):
        return {"serve": {"max_compilations": 4, "min_mean_batch_size": 2.0,
                          "min_qps": 100.0},
                "overload": {"min_degraded": 10}}

    def check(self, bench, baseline):
        return run_checker("check_serve_smoke.py",
                           self.write_json("bench.json", bench),
                           self.write_json("baseline.json", baseline))

    def test_passes_healthy_serve(self):
        self.assert_pass(self.check(self.bench(), self.baseline()))

    def test_fails_on_compile_storm(self):
        bench = self.bench()
        bench["serve"]["compilations"] = 50
        self.assert_fail(self.check(bench, self.baseline()),
                         "amortization broke")

    def test_fails_on_queue_bound_violation(self):
        bench = self.bench()
        bench["overload"]["peak_queue_depth"] = 9
        self.assert_fail(self.check(bench, self.baseline()),
                         "queue bound")

    def test_fails_when_shedding_never_engages(self):
        bench = self.bench()
        bench["overload"]["degraded"] = bench["overload"]["shed"] = 0
        self.assert_fail(self.check(bench, self.baseline()),
                         "shedding never engaged")

    def test_fails_on_shed_accounting_divergence(self):
        bench = self.bench()
        bench["overload"]["shed"] = bench["overload"]["degraded"] - 1
        self.assert_fail(self.check(bench, self.baseline()),
                         "shed accounting diverged")


class ExecSmokeTest(CheckerTestCase):
    def bench(self):
        section = {"scalar_seconds": 0.1, "batch_seconds": 0.02,
                   "speedup": 5.0, "rows_emitted": 1234,
                   "charged_bit_equal": True, "rows_equal": True}
        return {"scan": copy.deepcopy(section),
                "join": copy.deepcopy(section)}

    def baseline(self):
        floor = {"expected_rows": 1234, "min_speedup": 1.5}
        return {"scan": dict(floor), "join": dict(floor)}

    def check(self, bench, baseline):
        return run_checker("check_exec_smoke.py",
                           self.write_json("bench.json", bench),
                           self.write_json("baseline.json", baseline))

    def test_passes_bit_equal_fast(self):
        self.assert_pass(self.check(self.bench(), self.baseline()))

    def test_fails_on_charge_divergence(self):
        bench = self.bench()
        bench["join"]["charged_bit_equal"] = False
        self.assert_fail(self.check(bench, self.baseline()),
                         "no longer bit-exact")

    def test_fails_on_row_drift(self):
        bench = self.bench()
        bench["scan"]["rows_emitted"] = 1233
        self.assert_fail(self.check(bench, self.baseline()),
                         "deterministic result drifted")

    def test_fails_on_speedup_collapse(self):
        bench = self.bench()
        bench["scan"]["speedup"] = 1.0
        self.assert_fail(self.check(bench, self.baseline()),
                         "throughput")


class StorageSmokeTest(CheckerTestCase):
    def bench(self):
        return {
            "pool_pages": 64, "dataset_pages": 512,
            "reexec": {"ratio_lru": 3.0, "ratio_2q": 3.2,
                       "rows_emitted": 777},
            "scan_mix": {"lru_over_2q": 1.4},
            "parity": {"charged_bit_equal": True, "rows_equal": True,
                       "accounting_exact": True},
        }

    def baseline(self):
        return {"reexec": {"min_ratio": 2.0, "expected_rows": 777},
                "scan_mix": {"min_lru_over_2q": 1.1}}

    def check(self, bench, baseline):
        return run_checker("check_storage_smoke.py",
                           self.write_json("bench.json", bench),
                           self.write_json("baseline.json", baseline))

    def test_passes_healthy_storage(self):
        self.assert_pass(self.check(self.bench(), self.baseline()))

    def test_fails_when_dataset_fits_in_pool(self):
        bench = self.bench()
        bench["dataset_pages"] = 255
        self.assert_fail(self.check(bench, self.baseline()),
                         "no longer exceed the pool")

    def test_fails_on_cache_ratio_collapse(self):
        bench = self.bench()
        bench["reexec"]["ratio_2q"] = 1.5
        self.assert_fail(self.check(bench, self.baseline()),
                         "re-execution re-reads")

    def test_fails_on_scan_resistance_loss(self):
        bench = self.bench()
        bench["scan_mix"]["lru_over_2q"] = 1.0
        self.assert_fail(self.check(bench, self.baseline()),
                         "scan resistance")

    def test_fails_on_accounting_mismatch(self):
        bench = self.bench()
        bench["parity"]["accounting_exact"] = False
        self.assert_fail(self.check(bench, self.baseline()),
                         "accounting_exact")


class FeedbackSmokeTest(CheckerTestCase):
    def bench(self):
        return {
            "warm": {"requests": 6, "feedback_records": 6,
                     "feedback_hits": 3, "warm_runs": 3,
                     "contours_skipped": 3, "rows_identical": True,
                     "cold_steps": 9, "warm_steps": 6,
                     "driver_contours_skipped": 1},
            "shrink": {"full_points": 1600, "shrunken_points": 400,
                       "full_dp_calls": 5000, "shrunken_dp_calls": 1200,
                       "full_wall_seconds": 0.5,
                       "shrunken_wall_seconds": 0.1},
            "oracle": {"instances": 40, "warm_runs": 900,
                       "mispredicted_runs": 150, "violations": 0},
            "shootout": [
                {"policy": p, "mso": 3.0, "aso": 1.5, "max_harm": 0.0,
                 "plans": 4}
                for p in ("native", "seer", "parqo", "pao", "bouquet")],
        }

    def baseline(self):
        return {"warm": {"min_warm_runs": 1, "min_contours_skipped": 1},
                "shrink": {"full_points": 1600},
                "oracle": {"min_runs": 1000},
                "shootout": {"policies": ["native", "seer", "parqo", "pao",
                                          "bouquet"],
                             "max_bouquet_mso": 12.0}}

    def check(self, bench, baseline):
        return run_checker("check_feedback_smoke.py",
                           self.write_json("bench.json", bench),
                           self.write_json("baseline.json", baseline))

    def test_passes_healthy_feedback_loop(self):
        self.assert_pass(self.check(self.bench(), self.baseline()))

    def test_fails_when_warm_starts_vanish(self):
        bench = self.bench()
        bench["warm"]["warm_runs"] = 0
        self.assert_fail(self.check(bench, self.baseline()),
                         "no longer warm-starts")

    def test_fails_on_result_divergence(self):
        bench = self.bench()
        bench["warm"]["rows_identical"] = False
        self.assert_fail(self.check(bench, self.baseline()),
                         "changed the query result")

    def test_fails_when_shrink_saves_nothing(self):
        bench = self.bench()
        bench["shrink"]["shrunken_dp_calls"] = bench["shrink"]["full_dp_calls"]
        self.assert_fail(self.check(bench, self.baseline()),
                         "no longer saves compile work")

    def test_fails_on_oracle_violation(self):
        bench = self.bench()
        bench["oracle"]["violations"] = 2
        self.assert_fail(self.check(bench, self.baseline()),
                         "Theorem 3 bound")

    def test_fails_on_missing_policy(self):
        bench = self.bench()
        bench["shootout"] = [r for r in bench["shootout"]
                             if r["policy"] != "pao"]
        self.assert_fail(self.check(bench, self.baseline()),
                         "missing policies")

    def test_fails_on_nonfinite_metric(self):
        bench = self.bench()
        bench["shootout"][0]["mso"] = None
        self.assert_fail(self.check(bench, self.baseline()),
                         "not finite")

    def test_fails_on_bouquet_mso_blowup(self):
        bench = self.bench()
        bench["shootout"][-1]["mso"] = 50.0
        self.assert_fail(self.check(bench, self.baseline()),
                         "robustness edge")


class TraceSchemaTest(CheckerTestCase):
    def spans(self):
        root = {"span_id": 1, "parent_id": 0, "trace_id": 1,
                "name": "driver.step", "start": 0.0, "dur": 0.5,
                "attrs": {"budget": 100.0, "charged": 90.0}, "sattrs": {}}
        child = {"span_id": 2, "parent_id": 1, "trace_id": 1,
                 "name": "exec.node", "start": 0.1, "dur": 0.2,
                 "attrs": {}, "sattrs": {"op": "scan"}}
        return [root, child]

    def check(self, spans, *extra):
        trace = self.write_text(
            "trace.jsonl", "".join(json.dumps(s) + "\n" for s in spans))
        return run_checker("check_trace_schema.py", trace, *extra)

    def test_passes_valid_trace(self):
        self.assert_pass(self.check(self.spans()))

    def test_fails_on_budget_violation(self):
        spans = self.spans()
        spans[0]["attrs"]["charged"] = 200.0  # > 100 * 1.01 + 10
        self.assert_fail(self.check(spans), "budget invariant violated")

    def test_fails_on_duplicate_span_id(self):
        spans = self.spans()
        spans[1]["span_id"] = 1
        self.assert_fail(self.check(spans), "duplicate span_id")

    def test_fails_on_missing_field(self):
        spans = self.spans()
        del spans[0]["dur"]
        self.assert_fail(self.check(spans), "missing field 'dur'")

    def test_dangling_parent_is_error_by_default(self):
        spans = self.spans()
        spans[1]["parent_id"] = 99
        self.assert_fail(self.check(spans), "not in export")

    def test_allow_dropped_demotes_dangling_parent(self):
        spans = self.spans()
        spans[1]["parent_id"] = 99
        self.assert_pass(self.check(spans, "--allow-dropped"))

    def test_require_names_enforced(self):
        self.assert_fail(self.check(self.spans(), "--require-names",
                                    "sim.step"),
                         "never appears")

    def test_empty_trace_is_invalid(self):
        self.assert_fail(self.check([]), "no spans")


class LintFixtureGateTest(CheckerTestCase):
    """The gate that validates the lint fixtures must itself reject rot:
    a negative fixture without markers, a marker the engine cannot
    reproduce, and a control with findings are all gate failures."""

    def check(self, *fixtures):
        return run_checker("check_lint_fixtures.py", "--root", REPO,
                           "--schema", os.path.join(SCRIPTS,
                                                    "trace_schema.json"),
                           *fixtures)

    def test_real_fixtures_pass(self):
        fixtures = sorted(
            os.path.join(REPO, "tests", "static", "lint", "fixtures", f)
            for f in os.listdir(
                os.path.join(REPO, "tests", "static", "lint", "fixtures"))
            if f.endswith(".cc"))
        self.assertGreaterEqual(len(fixtures), 6)
        self.assert_pass(self.check(*fixtures))

    def test_rejects_unmarked_negative_fixture(self):
        f = self.write_text("fail_unmarked.cc",
                            "void G();\nvoid F() { (void)G(); }\n")
        self.assert_fail(self.check(f), "no expect-lint markers")

    def test_rejects_marker_engine_cannot_reproduce(self):
        f = self.write_text(
            "fail_ghost.cc",
            "// expect-lint: bouquet-discarded-status\nvoid F() {}\n")
        self.assert_fail(self.check(f), "expected but not reported")

    def test_rejects_dirty_control(self):
        f = self.write_text("control_dirty.cc",
                            "void G();\nvoid F() { (void)G(); }\n")
        self.assert_fail(self.check(f), "reported but not expected")


if __name__ == "__main__":
    unittest.main(verbosity=2)

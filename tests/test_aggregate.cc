// Tests for grouped aggregation (SPJA queries): optimizer wrapping, recost
// consistency, executor correctness against reference computations, and the
// full bouquet pipeline over an aggregate query.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bouquet/bouquet.h"
#include "bouquet/simulator.h"
#include "ess/pic.h"
#include "ess/posp_generator.h"
#include "executor/builder.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchDataOptions opts;
    opts.mini_scale = 0.1;
    MakeTpchDatabase(&db_, opts);
    SyncTpchCatalog(db_, &catalog_);
    query_ = Make2DHQ8a(catalog_);
    BindSelectionConstants(&query_, catalog_, {0.4, 0.5});
    // Group by part size, sum the lineitem quantities.
    query_.aggregate.enabled = true;
    query_.aggregate.group_by = {{"part", "p_size"}};
    query_.aggregate.func = AggregateSpec::Func::kSum;
    query_.aggregate.agg_table = "lineitem";
    query_.aggregate.agg_column = "l_quantity";
    ASSERT_TRUE(query_.Validate(catalog_).ok());
    opt_ = std::make_unique<QueryOptimizer>(query_, catalog_,
                                            CostParams::Postgres());
  }

  // Reference: group sums computed by brute force over the join.
  std::map<int64_t, int64_t> ReferenceSums() {
    const DataTable& part = db_.table("part");
    const DataTable& lineitem = db_.table("lineitem");
    const DataTable& orders = db_.table("orders");
    std::map<int64_t, int64_t> part_size;  // partkey -> size (if passing)
    for (int64_t r = 0; r < part.num_rows(); ++r) {
      if (part.value(1, r) < query_.filters[0].constant) {
        part_size[part.value(0, r)] = part.value(2, r);
      }
    }
    std::set<int64_t> order_pass;
    for (int64_t r = 0; r < orders.num_rows(); ++r) {
      if (orders.value(3, r) < query_.filters[1].constant) {
        order_pass.insert(orders.value(0, r));
      }
    }
    std::map<int64_t, int64_t> sums;
    const int lpk = lineitem.ColumnIndex("l_partkey");
    const int lok = lineitem.ColumnIndex("l_orderkey");
    const int lq = lineitem.ColumnIndex("l_quantity");
    for (int64_t r = 0; r < lineitem.num_rows(); ++r) {
      auto it = part_size.find(lineitem.value(lpk, r));
      if (it == part_size.end()) continue;
      if (!order_pass.count(lineitem.value(lok, r))) continue;
      sums[it->second] += lineitem.value(lq, r);
    }
    return sums;
  }

  Database db_;
  Catalog catalog_;
  QuerySpec query_;
  std::unique_ptr<QueryOptimizer> opt_;
};

TEST_F(AggregateTest, OptimizerWrapsRoot) {
  const Plan plan = opt_->OptimizeAt({0.4, 0.5});
  EXPECT_EQ(plan.root->op, OpType::kHashAggregate);
  ASSERT_TRUE(plan.root->left != nullptr);
  EXPECT_TRUE(plan.root->left->is_join());
  EXPECT_EQ(plan.signature.rfind("AGG(", 0), 0u);
  // Output cardinality bounded by the group column's NDV (p_size: 50).
  EXPECT_LE(plan.rows, 50.0 + 1e-9);
}

TEST_F(AggregateTest, RecostMatchesOptimizerCost) {
  for (double s : {0.01, 0.2, 0.8}) {
    const Plan plan = opt_->OptimizeAt({s, s});
    const double recost = opt_->CostPlanAt(*plan.root, {s, s});
    EXPECT_NEAR(recost, plan.cost, plan.cost * 1e-9) << "s=" << s;
  }
}

TEST_F(AggregateTest, ExecutorMatchesReference) {
  const auto expected = ReferenceSums();
  const Plan plan = opt_->OptimizeAt({0.4, 0.5});
  ExecContext ctx;
  ctx.query = &query_;
  ctx.catalog = &catalog_;
  ctx.db = &db_;
  ctx.cost_model = &opt_->cost_model();
  std::vector<Row> rows;
  const ExecutionOutcome out = ExecutePlan(
      *plan.root, &ctx, std::numeric_limits<double>::infinity(), &rows);
  ASSERT_EQ(out.status, ExecResult::kDone);
  ASSERT_EQ(rows.size(), expected.size());
  for (const Row& row : rows) {
    ASSERT_EQ(row.size(), 2u);  // group key + sum
    auto it = expected.find(row[0]);
    ASSERT_NE(it, expected.end()) << "unexpected group " << row[0];
    EXPECT_EQ(row[1], it->second) << "group " << row[0];
  }
}

TEST_F(AggregateTest, EmissionOrderIsSortedByGroupKey) {
  // The hash aggregate drains its unordered table into a sort before
  // emitting (the bouquet-determinism lint's sanctioned escape): output
  // order must be ascending group key, never hash-bucket order. If this
  // regresses, charged-cost replays stay bit-equal but row order becomes
  // a function of the allocator, breaking the differential harnesses.
  const Plan plan = opt_->OptimizeAt({0.4, 0.5});
  ExecContext ctx;
  ctx.query = &query_;
  ctx.catalog = &catalog_;
  ctx.db = &db_;
  ctx.cost_model = &opt_->cost_model();
  std::vector<Row> rows;
  const ExecutionOutcome out = ExecutePlan(
      *plan.root, &ctx, std::numeric_limits<double>::infinity(), &rows);
  ASSERT_EQ(out.status, ExecResult::kDone);
  ASSERT_GT(rows.size(), 1u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1][0], rows[i][0])
        << "group keys out of order at row " << i;
  }
}

TEST_F(AggregateTest, CountMinMaxFunctions) {
  ExecContext ctx;
  ctx.query = &query_;
  ctx.catalog = &catalog_;
  ctx.db = &db_;
  ctx.cost_model = &opt_->cost_model();
  for (auto func : {AggregateSpec::Func::kCount, AggregateSpec::Func::kMin,
                    AggregateSpec::Func::kMax}) {
    query_.aggregate.func = func;
    QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
    const Plan plan = opt.OptimizeAt({0.4, 0.5});
    std::vector<Row> rows;
    const ExecutionOutcome out = ExecutePlan(
        *plan.root, &ctx, std::numeric_limits<double>::infinity(), &rows);
    ASSERT_EQ(out.status, ExecResult::kDone);
    EXPECT_FALSE(rows.empty());
    if (func == AggregateSpec::Func::kMin ||
        func == AggregateSpec::Func::kMax) {
      for (const Row& row : rows) {
        EXPECT_GE(row[1], 1);   // l_quantity domain
        EXPECT_LE(row[1], 50);
      }
    }
  }
  query_.aggregate.func = AggregateSpec::Func::kSum;
}

TEST_F(AggregateTest, ScalarCountOverEmptyInput) {
  QuerySpec q = query_;
  q.aggregate.group_by.clear();
  q.aggregate.func = AggregateSpec::Func::kCount;
  q.filters[0].constant = INT64_MIN + 1;  // empty join
  QueryOptimizer opt(q, catalog_, CostParams::Postgres());
  const Plan plan = opt.OptimizeAt({0.001, 0.001});
  ExecContext ctx;
  ctx.query = &q;
  ctx.catalog = &catalog_;
  ctx.db = &db_;
  ctx.cost_model = &opt.cost_model();
  std::vector<Row> rows;
  const ExecutionOutcome out = ExecutePlan(
      *plan.root, &ctx, std::numeric_limits<double>::infinity(), &rows);
  ASSERT_EQ(out.status, ExecResult::kDone);
  ASSERT_EQ(rows.size(), 1u);  // COUNT(*) = 0, one row
  EXPECT_EQ(rows[0].back(), 0);
}

TEST_F(AggregateTest, FullBouquetPipelineWorks) {
  const EssGrid grid(query_, {10, 10});
  const PlanDiagram diagram =
      GeneratePosp(query_, catalog_, CostParams::Postgres(), grid);
  EXPECT_TRUE(IsPicMonotone(diagram));
  const PlanBouquet bouquet = BuildBouquet(diagram, opt_.get());
  EXPECT_GE(bouquet.cardinality(), 1);
  BouquetSimulator sim(bouquet, diagram, opt_.get());
  for (uint64_t qa = 0; qa < grid.num_points(); qa += 7) {
    const SimResult run = sim.RunBasic(qa);
    EXPECT_TRUE(run.completed);
    EXPECT_FALSE(run.fallback_used) << "qa=" << qa;
  }
}

TEST_F(AggregateTest, ValidateRejectsUnknownColumns) {
  QuerySpec q = query_;
  q.aggregate.group_by = {{"part", "does_not_exist"}};
  EXPECT_FALSE(q.Validate(catalog_).ok());
  q = query_;
  q.aggregate.agg_column = "nope";
  EXPECT_FALSE(q.Validate(catalog_).ok());
}

}  // namespace
}  // namespace bouquet

// Differential guard for the incremental POSP fast path's core assumption:
// RecostPlanTotal reproduces the DP enumerator's cost *bit-for-bit* for
// every plan the enumerator materializes, at every selectivity assignment.
// (The fast path certifies optimality by comparing a recost against a DP
// lower bound with exact float equality as the fixpoint; any re-association
// between the two derivations would silently disable or — worse —
// mis-certify skips.)

#include <gtest/gtest.h>

#include <cstdint>

#include "ess/ess_grid.h"
#include "ess/posp_generator.h"
#include "optimizer/dp_bound.h"
#include "optimizer/optimizer.h"
#include "workloads/spaces.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

// Deterministic 64-bit mix for seeded point sampling.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// At `samples` seeded grid points: (a) the DP's winning cost equals the
// recost of its winning plan exactly; (b) every POSP plan recosted at the
// point costs at least the winner (the DP optimum is a true lower bound
// over the diagram's plan set); (c) the scalar DP bound never exceeds the
// optimum.
void CheckSpace(const QuerySpec& query, const Catalog& catalog,
                const EssGrid& grid, uint64_t samples, uint64_t seed) {
  const CostParams params = CostParams::Postgres();
  const PlanDiagram diagram = GeneratePosp(query, catalog, params, grid);
  QueryOptimizer opt(query, catalog, params);
  DpLowerBound bound(query, catalog, CostModel(params));

  const uint64_t n = grid.num_points();
  DimVector sels;
  for (uint64_t k = 0; k < samples; ++k) {
    const uint64_t i = Mix64(seed ^ k) % n;
    grid.SelectivityAt(i, &sels);
    const Plan p = opt.OptimizeAt(sels);
    const double direct = opt.CostPlanAt(*p.root, sels);
    EXPECT_EQ(p.cost, direct)
        << "recost diverged from DP cost at point " << i;
    for (int pl = 0; pl < diagram.num_plans(); ++pl) {
      const double c = diagram.plan(pl).root
                           ? opt.CostPlanAt(*diagram.plan(pl).root, sels)
                           : 0.0;
      EXPECT_GE(c, p.cost) << "plan " << pl << " undercut the DP optimum at "
                           << "point " << i;
    }
    const double lb = bound.BoundAt(sels);
    EXPECT_LE(lb, p.cost) << "DP bound exceeded the optimum at point " << i;
  }
}

TEST(RecostDifferentialTest, EqQuery1DAt1kSeededPoints) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  const QuerySpec query = MakeEqQuery(catalog);
  const EssGrid grid(query, {1000});
  CheckSpace(query, catalog, grid, 1000, 0xD1FFE8ULL);
}

TEST(RecostDifferentialTest, Tpch2DJoinSpace) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  const QuerySpec query = Make2DHQ8a(catalog);
  const EssGrid grid(query, {32, 32});
  CheckSpace(query, catalog, grid, 200, 0xBEEF5ULL);
}

TEST(RecostDifferentialTest, Tpch3DSpace) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace("3D_H_Q5", tpch, tpcds);
  const EssGrid grid(space.query, {8, 8, 8});
  CheckSpace(space.query, tpch, grid, 100, 0xC0FFEEULL);
}

}  // namespace
}  // namespace bouquet

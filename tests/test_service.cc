// Tests for the concurrent bouquet service layer: ThreadPool semantics
// (including nest-safety), template-key structural identity, BouquetCache
// LRU eviction + counters, single-flight compilation dedup, pool-parallel
// POSP determinism, warm-start from serialized bouquets, and the per-request
// stats split.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <future>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bouquet/serialize.h"
#include "common/thread_pool.h"
#include "ess/posp_generator.h"
#include "service/bouquet_cache.h"
#include "service/service.h"
#include "service/template_key.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, SubmitReturnsFutureResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<int> visits(1000, 0);
  pool.ParallelFor(0, visits.size(), 7, [&](uint64_t b, uint64_t e) {
    for (uint64_t i = b; i < e; ++i) ++visits[i];
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingleChunk) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](uint64_t, uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(0, 3, 100, [&](uint64_t b, uint64_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 3u);
  });
  EXPECT_EQ(calls, 1);
}

// A pool task may itself ParallelFor over the same pool: the calling thread
// claims chunks, so this completes even when every worker is busy.
TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::vector<std::future<uint64_t>> futs;
  for (int t = 0; t < 4; ++t) {
    futs.push_back(pool.Submit([&pool] {
      std::atomic<uint64_t> sum{0};
      pool.ParallelFor(0, 100, 9, [&](uint64_t b, uint64_t e) {
        for (uint64_t i = b; i < e; ++i) {
          sum.fetch_add(i, std::memory_order_relaxed);
        }
      });
      return sum.load();
    }));
  }
  for (auto& f : futs) EXPECT_EQ(f.get(), 4950u);
}

// ------------------------------------------------------------- Template keys

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : catalog_(MakeTpchCatalog(1.0)), query_(MakeEqQuery(catalog_)) {}

  ServiceOptions FastOptions() const {
    ServiceOptions o;
    o.num_threads = 4;
    o.grid_resolution = 30;
    o.min_shard_points = 1;  // force multi-shard POSP even on tiny grids
    o.cache_shards = 1;
    return o;
  }

  Catalog catalog_;
  QuerySpec query_;
};

TEST_F(ServiceTest, TemplateKeyIgnoresErrorDimConstantsAndName) {
  const std::vector<int> res{30};
  const CostParams cp = CostParams::Postgres();
  const BouquetParams bp;
  const std::string base = TemplateSignature(query_, res, cp, bp);

  // Binding the error-prone predicate's constant = same template (the whole
  // point of the cache: compile once, serve every binding).
  QuerySpec bound = query_;
  bound.filters[0].constant = 1234;
  bound.name = "EQ-instance-7";
  EXPECT_EQ(TemplateSignature(bound, res, cp, bp), base);

  // Anything the compiled artifact depends on changes the key.
  QuerySpec wider = query_;
  wider.error_dims[0].lo = 1e-3;
  EXPECT_NE(TemplateSignature(wider, res, cp, bp), base);

  BouquetParams other_bp;
  other_bp.lambda = 0.3;
  EXPECT_NE(TemplateSignature(query_, res, cp, other_bp), base);

  EXPECT_NE(TemplateSignature(query_, {40}, cp, bp), base);
  EXPECT_NE(TemplateSignature(query_, res, CostParams::Commercial(), bp),
            base);

  // Hash is stable and key-discriminating on this set.
  EXPECT_EQ(TemplateHash(base), TemplateHash(base));
  EXPECT_NE(TemplateHash(base),
            TemplateHash(TemplateSignature(wider, res, cp, bp)));
}

// ------------------------------------------------------------- BouquetCache

std::shared_ptr<const CompiledBouquet> DummyBundle() {
  return std::make_shared<CompiledBouquet>();
}

TEST(BouquetCacheTest, LruEvictionAndCounters) {
  BouquetCache cache(2, /*num_shards=*/1);
  EXPECT_EQ(cache.Get("a"), nullptr);  // miss
  cache.Put("a", DummyBundle());
  cache.Put("b", DummyBundle());
  EXPECT_NE(cache.Get("a"), nullptr);  // hit; bumps "a" to MRU
  cache.Put("c", DummyBundle());       // evicts LRU = "b"
  EXPECT_EQ(cache.Get("b"), nullptr);  // miss (evicted)
  EXPECT_NE(cache.Get("a"), nullptr);  // survived
  EXPECT_NE(cache.Get("c"), nullptr);

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.inserts, 3u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_NEAR(s.HitRate(), 3.0 / 5.0, 1e-12);
}

TEST(BouquetCacheTest, PutOverwritesWithoutEviction) {
  BouquetCache cache(2, 1);
  cache.Put("a", DummyBundle());
  auto replacement = DummyBundle();
  cache.Put("a", replacement);
  EXPECT_EQ(cache.Get("a"), replacement);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BouquetCacheTest, EvictedBundleSurvivesViaSharedPtr) {
  BouquetCache cache(1, 1);
  auto held = DummyBundle();
  cache.Put("a", held);
  cache.Put("b", DummyBundle());  // evicts "a"
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(held.use_count(), 1);  // still alive for in-flight requests
}

// ------------------------------------------------- Parallel POSP determinism

TEST_F(ServiceTest, PoolParallelPospIdenticalToSerial) {
  const EssGrid grid(query_, {40});
  const PlanDiagram serial =
      GeneratePosp(query_, catalog_, CostParams::Postgres(), grid);

  ThreadPool pool(4);
  PospOptions opts;
  opts.pool = &pool;
  opts.min_shard_points = 1;  // many shards, each with a private optimizer
  PospStats stats;
  const PlanDiagram parallel = GeneratePosp(
      query_, catalog_, CostParams::Postgres(), grid, opts, &stats);

  // Every point is accounted for by a full DP or a certified recost skip;
  // sharding must not lose or duplicate points.
  EXPECT_EQ(stats.dp_calls + stats.recost_hits,
            static_cast<long long>(grid.num_points()));
  EXPECT_EQ(stats.audit_failures, 0);
  ASSERT_EQ(parallel.num_plans(), serial.num_plans());
  for (uint64_t i = 0; i < grid.num_points(); ++i) {
    // Bit-identical: same interned plan ids, signatures, and costs.
    EXPECT_EQ(parallel.plan_at(i), serial.plan_at(i));
    EXPECT_EQ(parallel.plan(parallel.plan_at(i)).signature,
              serial.plan(serial.plan_at(i)).signature);
    EXPECT_DOUBLE_EQ(parallel.cost_at(i), serial.cost_at(i));
  }
}

// --------------------------------------------------------------- The service

TEST_F(ServiceTest, ServesRequestsAndReportsStatsSplit) {
  BouquetService service(catalog_, FastOptions());
  ServiceRequest req;
  req.query = query_;
  req.actual_selectivities = {0.05};
  auto res = service.Run(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->sim.completed);
  EXPECT_FALSE(res->cache_hit);
  EXPECT_TRUE(res->compiled);
  EXPECT_GT(res->compile_seconds, 0.0);
  EXPECT_GE(res->latency_seconds,
            res->execute_seconds);  // latency covers compile + execute
  ASSERT_NE(res->compiled_bundle, nullptr);
  EXPECT_GE(res->compiled_bundle->bouquet->cardinality(), 1);

  const ServiceStats s = service.stats();
  EXPECT_EQ(s.requests, 1u);
  EXPECT_EQ(s.compilations, 1u);
  EXPECT_GT(s.compile_seconds, 0.0);
  EXPECT_GE(s.latency_seconds, s.execute_seconds);
}

TEST_F(ServiceTest, RejectsMalformedRequests) {
  BouquetService service(catalog_, FastOptions());
  ServiceRequest req;
  req.query = query_;
  req.actual_selectivities = {0.05, 0.2};  // 1D query
  EXPECT_FALSE(service.Run(req).ok());

  ServiceRequest real;
  real.query = query_;
  real.mode = ExecutionMode::kRealData;  // no database configured
  EXPECT_FALSE(service.Run(real).ok());

  ServiceRequest bad;
  bad.query = query_;
  bad.query.tables.push_back("no_such_table");
  bad.actual_selectivities = {0.05};
  EXPECT_FALSE(service.Run(bad).ok());
}

TEST_F(ServiceTest, RepeatedTemplateHitRate) {
  BouquetService service(catalog_, FastOptions());
  const int M = 6;
  const double locations[M] = {0.001, 0.01, 0.05, 0.2, 0.5, 0.9};
  for (int i = 0; i < M; ++i) {
    ServiceRequest req;
    req.query = query_;
    req.query.filters[0].constant = 1000 + i;  // varying binding, same key
    req.actual_selectivities = {locations[i]};
    auto res = service.Run(req);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res->sim.completed);
    EXPECT_EQ(res->cache_hit, i > 0);
  }
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.requests, static_cast<uint64_t>(M));
  EXPECT_EQ(s.compilations, 1u);
  EXPECT_EQ(s.cache_hits, static_cast<uint64_t>(M - 1));
  EXPECT_GE(s.CacheHitRate(), (M - 1.0) / M - 1e-12);
}

TEST_F(ServiceTest, SingleFlightDedupUnderConcurrency) {
  ServiceOptions opts = FastOptions();
  opts.num_threads = 8;
  BouquetService service(catalog_, opts);

  const int N = 8;
  std::vector<std::future<Result<ServiceResult>>> futs;
  for (int i = 0; i < N; ++i) {
    ServiceRequest req;
    req.query = query_;
    req.actual_selectivities = {0.001 * (i + 1) * 37};
    futs.push_back(service.Submit(std::move(req)));
  }
  int shared = 0, hits = 0, compiled = 0;
  for (auto& f : futs) {
    auto res = f.get();
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_TRUE(res->sim.completed);
    shared += res->shared_compile ? 1 : 0;
    hits += res->cache_hit ? 1 : 0;
    compiled += res->compiled ? 1 : 0;
  }
  // Exactly one request compiled; everyone else either joined the in-flight
  // compilation or hit the cache afterwards.
  EXPECT_EQ(compiled, 1);
  EXPECT_EQ(shared + hits, N - 1);
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.compilations, 1u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.requests, static_cast<uint64_t>(N));
  EXPECT_EQ(service.cache().size(), 1u);
}

// Regression (stats admission ordering): requests used to be counted at the
// *end* of Run while GetOrCompile bumped cache_hits mid-request, so a
// concurrent stats() snapshot could observe cache_hits + cache_misses +
// shared_compiles > requests — i.e. CacheHitRate() > 1. Requests are now
// admitted into the counters before the cache is consulted, making the
// snapshot invariant hold at every instant.
TEST_F(ServiceTest, StatsSnapshotNeverOvercountsHits) {
  ServiceOptions opts = FastOptions();
  opts.num_threads = 4;
  BouquetService service(catalog_, opts);

  // Precompile the template so the workload below is all fast cache hits
  // (maximizing snapshot chances inside the hit window).
  {
    ServiceRequest req;
    req.query = query_;
    req.actual_selectivities = {0.05};
    ASSERT_TRUE(service.Run(req).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};
  std::thread snapshotter([&] {
    while (!stop.load()) {
      const ServiceStats s = service.stats();
      if (s.cache_hits + s.cache_misses + s.shared_compiles > s.requests) {
        violated.store(true);
      }
      if (s.CacheHitRate() > 1.0) violated.store(true);
    }
  });

  const int kThreads = 4, kIters = 150;
  std::vector<std::thread> runners;
  runners.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    runners.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        ServiceRequest req;
        req.query = query_;
        req.actual_selectivities = {0.001 * ((t * kIters + i) % 900 + 1)};
        EXPECT_TRUE(service.Run(req).ok());
      }
    });
  }
  for (auto& r : runners) r.join();
  stop.store(true);
  snapshotter.join();

  EXPECT_FALSE(violated.load())
      << "stats snapshot showed more cache outcomes than admitted requests";
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.requests, static_cast<uint64_t>(kThreads * kIters + 1));
  EXPECT_EQ(s.cache_hits, static_cast<uint64_t>(kThreads * kIters));
}

TEST_F(ServiceTest, DistinctTemplatesCompileSeparately) {
  BouquetService service(catalog_, FastOptions());
  ServiceRequest a;
  a.query = query_;
  a.actual_selectivities = {0.05};
  ASSERT_TRUE(service.Run(a).ok());

  ServiceRequest b;
  b.query = query_;
  b.query.error_dims[0].lo = 1e-3;  // different ESS range => new template
  b.actual_selectivities = {0.05};
  ASSERT_TRUE(service.Run(b).ok());

  EXPECT_EQ(service.stats().compilations, 2u);
  EXPECT_EQ(service.cache().size(), 2u);
}

TEST_F(ServiceTest, WarmStartServesWithoutCompiling) {
  // Offline: compile with the same configuration the service will use.
  const ServiceOptions opts = FastOptions();
  const EssGrid grid(query_, {opts.grid_resolution});
  const PlanDiagram diagram =
      GeneratePosp(query_, catalog_, opts.cost_params, grid);
  QueryOptimizer opt(query_, catalog_, opts.cost_params);
  const PlanBouquet bouquet =
      BuildBouquet(diagram, &opt, opts.bouquet_params);
  const std::string path =
      ::testing::TempDir() + "/test_service_warm_start.bouquet";
  ASSERT_TRUE(SaveBouquetToFile(diagram, bouquet, path).ok());

  // Online: a fresh service warm-starts from disk; no compilation happens.
  BouquetService service(catalog_, opts);
  ASSERT_TRUE(service.WarmStart(query_, path).ok())
      << service.WarmStart(query_, path).ToString();
  ServiceRequest req;
  req.query = query_;
  req.actual_selectivities = {0.2};
  auto res = service.Run(req);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->cache_hit);
  EXPECT_TRUE(res->sim.completed);
  EXPECT_TRUE(res->compiled_bundle->warm_started);

  const ServiceStats s = service.stats();
  EXPECT_EQ(s.compilations, 0u);
  EXPECT_EQ(s.warm_starts, 1u);
  EXPECT_EQ(s.cache_hits, 1u);
  std::remove(path.c_str());
}

TEST_F(ServiceTest, WarmStartRejectsResolutionMismatch) {
  const EssGrid grid(query_, {17});  // not the service's configured 30
  const PlanDiagram diagram =
      GeneratePosp(query_, catalog_, CostParams::Postgres(), grid);
  QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
  const PlanBouquet bouquet = BuildBouquet(diagram, &opt);
  const std::string path =
      ::testing::TempDir() + "/test_service_warm_mismatch.bouquet";
  ASSERT_TRUE(SaveBouquetToFile(diagram, bouquet, path).ok());

  BouquetService service(catalog_, FastOptions());
  const Status st = service.WarmStart(query_, path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// Service results must agree with a directly-driven simulator: the cache
// and concurrency layers may not change the execution outcome.
TEST_F(ServiceTest, ServiceExecutionMatchesDirectSimulator) {
  const ServiceOptions opts = FastOptions();
  BouquetService service(catalog_, opts);

  ServiceRequest req;
  req.query = query_;
  req.actual_selectivities = {0.3};
  auto res = service.Run(req);
  ASSERT_TRUE(res.ok());

  const auto& c = *res->compiled_bundle;
  // Reference: same bundle, direct call.
  const uint64_t qa = [&] {
    // Snap exactly as the service does: nearest axis point in log space.
    int best = 0;
    double best_d = 1e300;
    for (int i = 0; i < c.grid->resolution(0); ++i) {
      const double d = std::abs(std::log(0.3 / c.grid->axis(0)[i]));
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    return c.grid->LinearIndex(GridPoint{best});
  }();
  const SimResult direct = c.simulator->RunOptimized(qa);
  EXPECT_EQ(res->sim.total_cost, direct.total_cost);
  EXPECT_EQ(res->sim.num_executions, direct.num_executions);
  EXPECT_EQ(res->sim.final_plan, direct.final_plan);
}

// ------------------------------------------------------- Real-data serving

// Concurrent kRealData requests: every binding of the form shares one
// compiled template; each request gets its own driver + optimizer and runs
// the Volcano executor against the shared (internally-locked) Database.
TEST(ServiceRealDataTest, ConcurrentDriverExecutions) {
  Database db;
  TpchDataOptions data_opts;
  data_opts.mini_scale = 0.1;
  MakeTpchDatabase(&db, data_opts);
  Catalog catalog;
  SyncTpchCatalog(db, &catalog);
  QuerySpec form = Make2DHQ8a(catalog);

  ServiceOptions opts;
  opts.num_threads = 4;
  opts.grid_resolution = 10;
  opts.min_shard_points = 1;
  opts.database = &db;
  BouquetService service(catalog, opts);

  const double locations[][2] = {{0.05, 0.3}, {0.4, 0.1}, {0.7, 0.6}};
  std::vector<std::future<Result<ServiceResult>>> futs;
  for (const auto& loc : locations) {
    ServiceRequest req;
    req.query = form;
    BindSelectionConstants(&req.query, catalog, {loc[0], loc[1]});
    req.mode = ExecutionMode::kRealData;
    futs.push_back(service.Submit(std::move(req)));
  }
  for (auto& f : futs) {
    auto res = f.get();
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_TRUE(res->real.completed);
    EXPECT_GT(res->real.num_executions, 0);
  }
  // Different bindings of the same form share one compiled bouquet.
  EXPECT_EQ(service.stats().compilations, 1u);
  EXPECT_EQ(service.cache().size(), 1u);
}

// ----------------------------------------------------- Feedback integration

TEST(BouquetCacheTest, WarmEntriesTrackedThroughEviction) {
  BouquetCache cache(1, 1);
  auto warm = std::make_shared<CompiledBouquet>();
  warm->warm_started = true;
  cache.Put("a", std::shared_ptr<const CompiledBouquet>(std::move(warm)));
  CacheStats s = cache.stats();
  EXPECT_EQ(s.warm_inserts, 1u);
  EXPECT_EQ(s.warm_entries, 1u);
  EXPECT_EQ(s.warm_evictions, 0u);

  cache.Put("b", DummyBundle());  // LRU-evicts the warm entry
  s = cache.stats();
  EXPECT_EQ(s.warm_evictions, 1u);
  EXPECT_EQ(s.warm_entries, 0u);

  // Overwriting a cold entry with a warm one flips the live count; Clear
  // drains it.
  auto warm2 = std::make_shared<CompiledBouquet>();
  warm2->warm_started = true;
  cache.Put("b", std::shared_ptr<const CompiledBouquet>(std::move(warm2)));
  EXPECT_EQ(cache.stats().warm_entries, 1u);
  EXPECT_EQ(cache.stats().warm_inserts, 2u);
  cache.Clear();
  EXPECT_EQ(cache.stats().warm_entries, 0u);
}

TEST_F(ServiceTest, FeedbackWarmRunSkipsContours) {
  FeedbackStore store;  // memory-only: durability is test_feedback's job
  ServiceOptions opts = FastOptions();
  opts.feedback = &store;
  BouquetService service(catalog_, opts);
  ServiceRequest req;
  req.query = query_;
  req.actual_selectivities = {0.9};

  // The policy demands min_observations (3) before acting on feedback.
  for (int i = 0; i < 3; ++i) {
    auto res = service.Run(req);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_TRUE(res->sim.completed);
    EXPECT_EQ(res->sim.start_contour, 0);
  }
  auto warm = service.Run(req);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->sim.completed);
  EXPECT_FALSE(warm->sim.fallback_used);
  EXPECT_GT(warm->sim.start_contour, 0);  // ladder prefix skipped

  const ServiceStats s = service.stats();
  EXPECT_EQ(s.feedback_lookups, 4u);
  EXPECT_EQ(s.feedback_hits, 1u);
  EXPECT_EQ(s.feedback_warm_runs, 1u);
  EXPECT_GE(s.feedback_contours_skipped, 1u);
  EXPECT_EQ(s.feedback_records, 4u);
  // Regression: feedback warm runs must stay invisible to the compile
  // accounting — one template, one compilation == one miss, and the
  // file-warm-start counter untouched.
  EXPECT_EQ(s.compilations, 1u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.warm_starts, 0u);
}

TEST_F(ServiceTest, FeedbackShrinksEssBoxOnFreshCompile) {
  FeedbackStore store;
  ServiceOptions opts = FastOptions();
  opts.feedback = &store;
  ServiceRequest req;
  req.query = query_;
  req.actual_selectivities = {0.3};
  {
    BouquetService first(catalog_, opts);
    for (int i = 0; i < 3; ++i) {
      auto res = first.Run(req);
      ASSERT_TRUE(res.ok());
      EXPECT_FALSE(res->compiled_bundle->shrunken_box);  // no support yet
    }
    EXPECT_EQ(first.stats().feedback_box_shrinks, 0u);
  }

  // A fresh service sharing the store compiles the template over the
  // observed support (+ guard band) instead of the declared range.
  BouquetService second(catalog_, opts);
  auto res = second.Run(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_NE(res->compiled_bundle, nullptr);
  EXPECT_TRUE(res->compiled_bundle->shrunken_box);
  EXPECT_TRUE(res->sim.completed);
  const ServiceStats s = second.stats();
  EXPECT_EQ(s.feedback_box_shrinks, 1u);
  // The shrunken grid is strictly denser-per-decade but smaller overall.
  EXPECT_LT(res->compiled_bundle->grid->num_points(),
            static_cast<uint64_t>(opts.grid_resolution));
}

TEST_F(ServiceTest, StatsExposeWarmCacheGauges) {
  const ServiceOptions opts = FastOptions();
  const EssGrid grid(query_, {opts.grid_resolution});
  const PlanDiagram diagram =
      GeneratePosp(query_, catalog_, opts.cost_params, grid);
  QueryOptimizer opt(query_, catalog_, opts.cost_params);
  const PlanBouquet bouquet = BuildBouquet(diagram, &opt, opts.bouquet_params);
  const std::string path =
      ::testing::TempDir() + "/test_service_warm_gauge.bouquet";
  ASSERT_TRUE(SaveBouquetToFile(diagram, bouquet, path).ok());

  BouquetService service(catalog_, opts);
  ASSERT_TRUE(service.WarmStart(query_, path).ok());
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.cache_warm_entries, 1u);
  EXPECT_EQ(s.cache_warm_evictions, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bouquet

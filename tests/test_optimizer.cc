// Tests for optimizer/: selectivity resolution, DP enumeration, plan
// signatures, recosting, and the PCM property.

#include <gtest/gtest.h>

#include <cmath>

#include "optimizer/optimizer.h"
#include "optimizer/plan_signature.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"
#include "workloads/tpcds.h"

namespace bouquet {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : catalog_(MakeTpchCatalog(1.0)), query_(MakeEqQuery(catalog_)) {}
  Catalog catalog_;
  QuerySpec query_;
};

TEST_F(OptimizerTest, CreateValidates) {
  auto ok = QueryOptimizer::Create(query_, catalog_, CostParams::Postgres());
  EXPECT_TRUE(ok.ok());
  QuerySpec bad = query_;
  bad.tables.push_back("nope");
  auto fail = QueryOptimizer::Create(bad, catalog_, CostParams::Postgres());
  EXPECT_FALSE(fail.ok());
}

TEST_F(OptimizerTest, PlanCoversAllTables) {
  QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
  const Plan plan = opt.OptimizeAt({0.01});
  // Each table appears exactly once among the scan leaves.
  std::vector<int> seen(query_.tables.size(), 0);
  for (const PlanNode* n : CollectNodes(*plan.root)) {
    if (n->is_scan()) seen[n->table_idx]++;
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST_F(OptimizerTest, EveryJoinPredicateAppliedOnce) {
  QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
  const Plan plan = opt.OptimizeAt({0.3});
  std::vector<int> applied(query_.joins.size(), 0);
  for (const PlanNode* n : CollectNodes(*plan.root)) {
    for (int j : n->join_idxs) applied[j]++;
  }
  for (int a : applied) EXPECT_EQ(a, 1);
}

TEST_F(OptimizerTest, DeterministicSignatures) {
  QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
  const Plan a = opt.OptimizeAt({0.05});
  const Plan b = opt.OptimizeAt({0.05});
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST_F(OptimizerTest, PlanShapeShiftsWithSelectivity) {
  QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
  const Plan lo = opt.OptimizeAt({1e-4});
  const Plan hi = opt.OptimizeAt({1.0});
  EXPECT_NE(lo.signature, hi.signature);
  EXPECT_LT(lo.cost, hi.cost);
}

TEST_F(OptimizerTest, RecostAtOwnPointMatchesOptimizerCost) {
  QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
  for (double s : {1e-4, 1e-3, 0.01, 0.1, 0.5, 1.0}) {
    const Plan plan = opt.OptimizeAt({s});
    const double recost = opt.CostPlanAt(*plan.root, {s});
    EXPECT_NEAR(recost, plan.cost, plan.cost * 1e-9) << "s=" << s;
  }
}

TEST_F(OptimizerTest, OptimalityConsistencyAcrossPoints) {
  // The DP's plan at p must be no more expensive at p than any other POSP
  // plan recosted at p.
  QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
  const std::vector<double> points = {1e-4, 1e-3, 0.01, 0.1, 0.5, 1.0};
  std::vector<Plan> plans;
  for (double s : points) plans.push_back(opt.OptimizeAt({s}));
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < points.size(); ++j) {
      const double cross = opt.CostPlanAt(*plans[j].root, {points[i]});
      EXPECT_GE(cross, plans[i].cost * (1 - 1e-9))
          << "plan@" << points[j] << " beat optimal@" << points[i];
    }
  }
}

TEST_F(OptimizerTest, PcmOptimalCostMonotone1D) {
  QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
  double prev = 0.0;
  for (double s = 1e-4; s <= 1.0; s *= 1.6) {
    const double c = opt.OptimizeAt({s}).cost;
    EXPECT_GE(c, prev * (1 - 1e-9)) << "s=" << s;
    prev = c;
  }
}

TEST_F(OptimizerTest, DefaultDimsClamped) {
  QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
  const DimVector d = opt.DefaultDims();
  ASSERT_EQ(d.size(), 1u);
  EXPECT_GE(d[0], query_.error_dims[0].lo);
  EXPECT_LE(d[0], query_.error_dims[0].hi);
  // The magic default for inequality predicates without constants is 1/3.
  EXPECT_NEAR(d[0], 1.0 / 3.0, 1e-9);
}

TEST_F(OptimizerTest, OptimizeDefaultUsesMagicNumber) {
  QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
  const Plan def = opt.OptimizeDefault();
  const Plan injected = opt.OptimizeAt({1.0 / 3.0});
  EXPECT_EQ(def.signature, injected.signature);
}

TEST_F(OptimizerTest, InvocationCounter) {
  QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
  const long long before = opt.invocations();
  opt.OptimizeAt({0.1});
  opt.OptimizeAt({0.2});
  EXPECT_EQ(opt.invocations(), before + 2);
}

TEST_F(OptimizerTest, InvariantSubplanMemoIsTransparent) {
  // Two optimizers over the same query: one re-optimizing many points (memo
  // warm after the first call), one fresh per point. Results must be
  // bit-identical — the memo only reuses subproblems whose costs cannot
  // depend on the injected selectivities.
  QueryOptimizer warm(query_, catalog_, CostParams::Postgres());
  const DimVector points[] = {{0.001}, {0.01}, {0.1}, {0.5}, {0.9}, {0.01}};
  for (const DimVector& dims : points) {
    QueryOptimizer fresh(query_, catalog_, CostParams::Postgres());
    const Plan a = warm.OptimizeAt(dims);
    const Plan b = fresh.OptimizeAt(dims);
    EXPECT_EQ(a.signature, b.signature);
    EXPECT_EQ(a.cost, b.cost);  // bit-exact, not approximate
    EXPECT_EQ(a.rows, b.rows);
  }
  // The 1D EqQuery's error dim touches one table; every other singleton and
  // every subset avoiding it is memoized after the first optimization.
  EXPECT_GT(warm.memo_hits(), 0);
}

TEST_F(OptimizerTest, RecostDetailAlignsPreorder) {
  QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
  const Plan plan = opt.OptimizeAt({0.1});
  const PlanCostDetail detail = opt.RecostPlanAt(*plan.root, {0.1});
  const auto nodes = CollectNodes(*plan.root);
  ASSERT_EQ(detail.nodes.size(), nodes.size());
  EXPECT_NEAR(detail.total_cost, detail.nodes[0].cost, 1e-9);
  // Root cardinality equals the plan's estimate.
  EXPECT_NEAR(detail.nodes[0].rows, plan.rows, plan.rows * 1e-9 + 1e-9);
}

TEST_F(OptimizerTest, SelectivityInjectionOverridesOnlyErrorDims) {
  SelectivityResolver res(query_, catalog_);
  const double join0_default = res.JoinSelectivity(0);
  res.Inject({0.42});
  EXPECT_DOUBLE_EQ(res.FilterSelectivity(0), 0.42);
  EXPECT_DOUBLE_EQ(res.JoinSelectivity(0), join0_default);
  res.ClearInjection();
  EXPECT_NEAR(res.FilterSelectivity(0), 1.0 / 3.0, 1e-12);
}

TEST_F(OptimizerTest, JoinDefaultFromNdv) {
  SelectivityResolver res(query_, catalog_);
  // part-lineitem join: 1/max(ndv(p_partkey), ndv(l_partkey)) = 1/200000.
  EXPECT_NEAR(res.JoinSelectivity(0), 1.0 / 200000.0, 1e-12);
}

TEST(OptimizerSmallTest, TwoTableJoinPicksSensibleMethod) {
  Catalog cat;
  cat.AddTable(Catalog::MakeTable("s", 100, 64, {"k"}, 100));
  cat.AddTable(Catalog::MakeTable("l", 1000000, 100, {"k", "fk"}, 1000000));
  QuerySpec q;
  q.name = "two";
  q.tables = {"s", "l"};
  q.joins = {JoinPredicate{"s", "k", "l", "fk", -1.0}};
  ErrorDimension d;
  d.kind = DimKind::kJoin;
  d.predicate_index = 0;
  d.lo = 1e-9;
  d.hi = 1e-2;
  q.error_dims = {d};
  ASSERT_TRUE(q.Validate(cat).ok());
  QueryOptimizer opt(q, cat, CostParams::Postgres());
  // Tiny join selectivity: index NL from the small side wins over scanning
  // the big side.
  const Plan lo = opt.OptimizeAt({1e-9});
  EXPECT_EQ(lo.root->op, OpType::kIndexNLJoin);
  // At the PK-FK cap the big side must be consumed wholesale: hash/merge.
  const Plan hi = opt.OptimizeAt({1e-2});
  EXPECT_TRUE(hi.root->op == OpType::kHashJoin ||
              hi.root->op == OpType::kMergeJoin);
}

// ---------------------------------------------------------------------------
// Interesting orders
// ---------------------------------------------------------------------------

class InterestingOrderTest : public ::testing::Test {
 protected:
  InterestingOrderTest() {
    catalog_.AddTable(
        Catalog::MakeTable("a", 500000, 100, {"k", "x"}, 500000));
    catalog_.AddTable(
        Catalog::MakeTable("b", 500000, 100, {"k", "y"}, 500000));
    query_.name = "order_test";
    query_.tables = {"a", "b"};
    query_.joins = {JoinPredicate{"a", "k", "b", "k", -1.0}};
    // Filters on the join column itself: index scans then emit rows sorted
    // on k, which a merge join can exploit on both sides.
    query_.filters = {
        SelectionPredicate{"a", "k", CompareOp::kLess,
                           SelectionPredicate::kNoConstant, -1.0},
        SelectionPredicate{"b", "k", CompareOp::kLess,
                           SelectionPredicate::kNoConstant, -1.0}};
    ErrorDimension d1;
    d1.kind = DimKind::kSelection;
    d1.predicate_index = 0;
    d1.lo = 1e-4;
    d1.hi = 1.0;
    ErrorDimension d2 = d1;
    d2.predicate_index = 1;
    query_.error_dims = {d1, d2};
  }
  Catalog catalog_;
  QuerySpec query_;
};

TEST_F(InterestingOrderTest, PresortedMergeJoinChosen) {
  QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
  // At low-ish selectivities both sides use index scans (sorted on k);
  // the enumerator should discover the sort-free merge join.
  bool found_presorted = false;
  for (double s : {0.001, 0.003, 0.01, 0.03, 0.1}) {
    const Plan plan = opt.OptimizeAt({s, s});
    if (plan.signature.find("MJ{ss}") != std::string::npos) {
      found_presorted = true;
      // It must exploit index scans on both sides.
      EXPECT_EQ(plan.root->op, OpType::kMergeJoin);
      EXPECT_TRUE(plan.root->left_presorted);
      EXPECT_TRUE(plan.root->right_presorted);
    }
  }
  EXPECT_TRUE(found_presorted)
      << "sort-free merge join never chosen across the sweep";
}

TEST_F(InterestingOrderTest, PresortedCheaperThanSorted) {
  QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
  // Find a sweep point where the sort-free merge join wins.
  for (double s : {0.001, 0.003, 0.01, 0.03, 0.1}) {
    const Plan plan = opt.OptimizeAt({s, s});
    if (plan.root->op != OpType::kMergeJoin || !plan.root->left_presorted) {
      continue;
    }
    // Recosting the same tree with the presorted flags cleared must cost
    // strictly more (the sorts come back).
    auto stripped = std::make_shared<PlanNode>(*plan.root);
    stripped->left_presorted = false;
    stripped->right_presorted = false;
    const double with_flags = opt.CostPlanAt(*plan.root, {s, s});
    const double without = opt.CostPlanAt(*stripped, {s, s});
    EXPECT_GT(without, with_flags) << "s=" << s;
    return;
  }
  FAIL() << "no presorted merge join found in the sweep";
}

TEST_F(InterestingOrderTest, SignatureDistinguishesPresorted) {
  auto a = std::make_shared<PlanNode>();
  a->op = OpType::kMergeJoin;
  a->join_idxs = {0};
  auto l = std::make_shared<PlanNode>();
  l->op = OpType::kSeqScan;
  l->table_idx = 0;
  auto r = std::make_shared<PlanNode>(*l);
  r->table_idx = 1;
  a->left = l;
  a->right = r;
  auto b = std::make_shared<PlanNode>(*a);
  b->left_presorted = true;
  EXPECT_NE(PlanSignature(*a), PlanSignature(*b));
}

// Sweep the PCM property across all ten benchmark spaces along each
// dimension (at a coarse resolution for speed).
struct PcmCase {
  std::string name;
};

class PcmSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PcmSweepTest, OptimalCostMonotoneAlongEveryAxis) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace(GetParam(), tpch, tpcds);
  const Catalog& cat = space.benchmark == "H" ? tpch : tpcds;
  ASSERT_TRUE(space.query.Validate(cat).ok());
  QueryOptimizer opt(space.query, cat, CostParams::Postgres());

  const int dims = space.query.NumDims();
  // Walk each axis from the low corner and from the mid-point of others.
  for (int d = 0; d < dims; ++d) {
    DimVector base(dims);
    for (int e = 0; e < dims; ++e) {
      const auto& ed = space.query.error_dims[e];
      base[e] = std::sqrt(ed.lo * ed.hi);  // geometric midpoint
    }
    double prev = 0.0;
    const auto& ed = space.query.error_dims[d];
    for (int i = 0; i < 6; ++i) {
      base[d] = ed.lo * std::pow(ed.hi / ed.lo, i / 5.0);
      const double c = opt.OptimizeAt(base).cost;
      EXPECT_GE(c, prev * (1 - 1e-9))
          << space.name << " dim=" << d << " step=" << i;
      prev = c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Spaces, PcmSweepTest,
    ::testing::Values("3D_H_Q5", "3D_H_Q7", "4D_H_Q8", "5D_H_Q7",
                      "3D_DS_Q15", "3D_DS_Q96", "4D_DS_Q7", "4D_DS_Q26",
                      "4D_DS_Q91", "5D_DS_Q19"));

}  // namespace
}  // namespace bouquet

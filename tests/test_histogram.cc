// Tests for catalog/histogram: equi-depth construction, selectivity
// estimation, and quantile inversion.

#include <gtest/gtest.h>

#include "catalog/histogram.h"
#include "common/rng.h"

namespace bouquet {
namespace {

std::vector<int64_t> UniformValues(int n, int64_t lo, int64_t hi,
                                   uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = rng.NextInt64(lo, hi);
  return v;
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.SelectivityLess(10), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0);
}

TEST(HistogramTest, BuildBasics) {
  const auto h = Histogram::Build(UniformValues(10000, 0, 999), 64);
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.total_count(), 10000);
  EXPECT_GE(h.min_value(), 0);
  EXPECT_LE(h.max_value(), 999);
}

TEST(HistogramTest, SelectivityEndpoints) {
  const auto h = Histogram::Build(UniformValues(10000, 100, 200), 32);
  EXPECT_DOUBLE_EQ(h.SelectivityLess(100), 0.0);
  EXPECT_DOUBLE_EQ(h.SelectivityLess(50), 0.0);
  EXPECT_DOUBLE_EQ(h.SelectivityLess(201), 1.0);
  EXPECT_DOUBLE_EQ(h.SelectivityLessEqual(200), 1.0);
}

TEST(HistogramTest, UniformSelectivityAccuracy) {
  const auto values = UniformValues(50000, 0, 9999);
  const auto h = Histogram::Build(values, 100);
  for (int64_t cut : {1000, 2500, 5000, 7500, 9000}) {
    int64_t exact = 0;
    for (int64_t v : values) exact += v < cut;
    const double est = h.SelectivityLess(cut);
    EXPECT_NEAR(est, double(exact) / values.size(), 0.02) << "cut=" << cut;
  }
}

TEST(HistogramTest, QuantileInvertsSelectivity) {
  const auto values = UniformValues(20000, 0, 99999);
  const auto h = Histogram::Build(values, 128);
  for (double f : {0.01, 0.1, 0.25, 0.5, 0.9, 0.99}) {
    const int64_t v = h.Quantile(f);
    EXPECT_NEAR(h.SelectivityLessEqual(v), f, 0.03) << "f=" << f;
  }
}

TEST(HistogramTest, QuantileMonotone) {
  const auto h = Histogram::Build(UniformValues(5000, 0, 10000), 64);
  int64_t prev = h.Quantile(0.0);
  for (double f = 0.05; f <= 1.0; f += 0.05) {
    const int64_t q = h.Quantile(f);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(HistogramTest, RangeSelectivity) {
  const auto values = UniformValues(30000, 0, 999);
  const auto h = Histogram::Build(values, 64);
  int64_t exact = 0;
  for (int64_t v : values) exact += v >= 200 && v <= 400;
  EXPECT_NEAR(h.SelectivityRange(200, 400), double(exact) / values.size(),
              0.02);
  EXPECT_DOUBLE_EQ(h.SelectivityRange(400, 200), 0.0);
}

TEST(HistogramTest, SkewedData) {
  Rng rng(17);
  std::vector<int64_t> values(20000);
  for (auto& v : values) v = static_cast<int64_t>(rng.NextZipf(1000, 0.9));
  const auto h = Histogram::Build(values, 64);
  int64_t exact = 0;
  for (int64_t v : values) exact += v < 10;
  // Equi-depth handles skew: estimate within a few percent of truth.
  EXPECT_NEAR(h.SelectivityLess(10), double(exact) / values.size(), 0.05);
}

TEST(HistogramTest, SingleValueColumn) {
  const std::vector<int64_t> values(100, 7);
  const auto h = Histogram::Build(values, 16);
  EXPECT_DOUBLE_EQ(h.SelectivityLess(7), 0.0);
  EXPECT_DOUBLE_EQ(h.SelectivityLessEqual(7), 1.0);
  EXPECT_EQ(h.Quantile(0.5), 7);
}

TEST(HistogramTest, FewerValuesThanBuckets) {
  const std::vector<int64_t> values = {1, 5, 9};
  const auto h = Histogram::Build(values, 100);
  EXPECT_EQ(h.min_value(), 1);
  EXPECT_EQ(h.max_value(), 9);
  EXPECT_DOUBLE_EQ(h.SelectivityLessEqual(9), 1.0);
}

TEST(HistogramTest, NegativeValues) {
  const auto values = UniformValues(10000, -5000, 4999);
  const auto h = Histogram::Build(values, 64);
  EXPECT_NEAR(h.SelectivityLess(0), 0.5, 0.03);
}

// Parameterized sweep: quantile/selectivity round trip across bucket counts.
class HistogramBucketSweep : public ::testing::TestWithParam<int> {};

TEST_P(HistogramBucketSweep, RoundTrip) {
  const int buckets = GetParam();
  const auto values = UniformValues(40000, 0, 999999, /*seed=*/buckets);
  const auto h = Histogram::Build(values, buckets);
  const double tol = 2.0 / buckets + 0.01;
  for (double f : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(h.SelectivityLessEqual(h.Quantile(f)), f, tol)
        << "buckets=" << buckets << " f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Buckets, HistogramBucketSweep,
                         ::testing::Values(8, 16, 32, 64, 128, 256));

}  // namespace
}  // namespace bouquet

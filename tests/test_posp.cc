// Tests for ess/posp_generator and ess/pic: exhaustive generation,
// parallel-shard equivalence, and the PIC monotonicity property.

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "ess/pic.h"
#include "ess/posp_generator.h"
#include "optimizer/optimizer.h"
#include "workloads/spaces.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

class PospTest : public ::testing::Test {
 protected:
  PospTest()
      : catalog_(MakeTpchCatalog(1.0)),
        query_(MakeEqQuery(catalog_)),
        grid_(query_, {50}) {}
  Catalog catalog_;
  QuerySpec query_;
  EssGrid grid_;
};

TEST_F(PospTest, CoversEveryPoint) {
  const PlanDiagram d =
      GeneratePosp(query_, catalog_, CostParams::Postgres(), grid_);
  for (uint64_t i = 0; i < grid_.num_points(); ++i) {
    EXPECT_GE(d.plan_at(i), 0);
    EXPECT_GT(d.cost_at(i), 0.0);
  }
  EXPECT_GE(d.num_plans(), 2);
}

TEST_F(PospTest, CostsMatchDirectOptimization) {
  const PlanDiagram d =
      GeneratePosp(query_, catalog_, CostParams::Postgres(), grid_);
  QueryOptimizer opt(query_, catalog_, CostParams::Postgres());
  for (uint64_t i = 0; i < grid_.num_points(); i += 7) {
    const Plan p = opt.OptimizeAt(grid_.SelectivityAt(i));
    EXPECT_NEAR(d.cost_at(i), p.cost, p.cost * 1e-9);
    EXPECT_EQ(d.plan(d.plan_at(i)).signature, p.signature);
  }
}

TEST_F(PospTest, StatsReported) {
  PospStats stats;
  GeneratePosp(query_, catalog_, CostParams::Postgres(), grid_, PospOptions{},
               &stats);
  // Every point is served by either a full DP or the recost fast path.
  EXPECT_EQ(stats.dp_calls + stats.recost_hits,
            static_cast<long long>(grid_.num_points()));
  EXPECT_EQ(stats.optimizer_calls, stats.dp_calls);
  EXPECT_GT(stats.recost_hits, 0);
  EXPECT_EQ(stats.audit_failures, 0);
  EXPECT_EQ(stats.shards, 1);
  EXPECT_GE(stats.wall_seconds, 0.0);

  // Memoryless mode restores the historical one-DP-per-point behavior.
  PospOptions memoryless;
  memoryless.incremental = false;
  PospStats mstats;
  GeneratePosp(query_, catalog_, CostParams::Postgres(), grid_, memoryless,
               &mstats);
  EXPECT_EQ(mstats.dp_calls, static_cast<long long>(grid_.num_points()));
  EXPECT_EQ(mstats.recost_hits, 0);
  EXPECT_EQ(mstats.audit_checks, 0);
}

TEST_F(PospTest, IncrementalMatchesMemoryless) {
  PospOptions memoryless;
  memoryless.incremental = false;
  const PlanDiagram reference = GeneratePosp(
      query_, catalog_, CostParams::Postgres(), grid_, memoryless);
  PospStats stats;
  const PlanDiagram incremental = GeneratePosp(
      query_, catalog_, CostParams::Postgres(), grid_, PospOptions{}, &stats);
  ASSERT_EQ(reference.num_plans(), incremental.num_plans());
  for (int p = 0; p < reference.num_plans(); ++p) {
    EXPECT_EQ(reference.plan(p).signature, incremental.plan(p).signature);
  }
  for (uint64_t i = 0; i < grid_.num_points(); ++i) {
    EXPECT_EQ(reference.plan_at(i), incremental.plan_at(i));
    // Bit-exact, not approximate: skips only fire on proven equality.
    EXPECT_EQ(reference.cost_at(i), incremental.cost_at(i));
  }
  EXPECT_GT(stats.recost_hits, 0);
}

TEST_F(PospTest, AuditSamplingRunsAndPasses) {
  PospOptions audited;
  audited.audit_fraction = 1.0;  // audit every skipped point
  PospStats stats;
  const PlanDiagram d = GeneratePosp(query_, catalog_, CostParams::Postgres(),
                                     grid_, audited, &stats);
  EXPECT_GT(stats.recost_hits, 0);
  EXPECT_EQ(stats.audit_checks, stats.recost_hits);
  EXPECT_EQ(stats.audit_failures, 0);

  PospOptions unaudited;
  unaudited.audit_fraction = 0.0;
  PospStats ustats;
  const PlanDiagram d2 = GeneratePosp(
      query_, catalog_, CostParams::Postgres(), grid_, unaudited, &ustats);
  EXPECT_EQ(ustats.audit_checks, 0);
  for (uint64_t i = 0; i < grid_.num_points(); ++i) {
    EXPECT_EQ(d.cost_at(i), d2.cost_at(i));
    EXPECT_EQ(d.plan_at(i), d2.plan_at(i));
  }
}

TEST_F(PospTest, ParallelEqualsSerial) {
  const PlanDiagram serial =
      GeneratePosp(query_, catalog_, CostParams::Postgres(), grid_,
                   PospOptions{1});
  PospOptions par;
  par.num_threads = 4;
  const PlanDiagram parallel =
      GeneratePosp(query_, catalog_, CostParams::Postgres(), grid_, par);
  for (uint64_t i = 0; i < grid_.num_points(); ++i) {
    EXPECT_DOUBLE_EQ(serial.cost_at(i), parallel.cost_at(i));
    EXPECT_EQ(serial.plan(serial.plan_at(i)).signature,
              parallel.plan(parallel.plan_at(i)).signature);
  }
}

TEST_F(PospTest, PoolShardingNeverCreatesSubMinimumTails) {
  // Regression: 65 points with a 16-point shard floor used to produce a
  // 5th single-point tail shard (ceil-chunking); the shard count must now
  // be clamped so every shard gets at least min_shard_points.
  const EssGrid grid(query_, {65});
  ThreadPool pool(3);
  PospOptions pooled;
  pooled.pool = &pool;
  pooled.min_shard_points = 16;
  PospStats stats;
  const PlanDiagram d = GeneratePosp(query_, catalog_, CostParams::Postgres(),
                                     grid, pooled, &stats);
  EXPECT_GT(stats.shards, 1);
  EXPECT_LE(stats.shards,
            static_cast<long long>(grid.num_points() / 16));
  const PlanDiagram serial =
      GeneratePosp(query_, catalog_, CostParams::Postgres(), grid);
  for (uint64_t i = 0; i < grid.num_points(); ++i) {
    EXPECT_EQ(serial.cost_at(i), d.cost_at(i));
    EXPECT_EQ(serial.plan(serial.plan_at(i)).signature,
              d.plan(d.plan_at(i)).signature);
  }
}

TEST_F(PospTest, PicMonotone1D) {
  const PlanDiagram d =
      GeneratePosp(query_, catalog_, CostParams::Postgres(), grid_);
  EXPECT_TRUE(IsPicMonotone(d));
  EXPECT_EQ(CountPicViolations(d), 0);
}

TEST_F(PospTest, PicSliceShape) {
  const PlanDiagram d =
      GeneratePosp(query_, catalog_, CostParams::Postgres(), grid_);
  const auto slice = PicSlice(d, 0, GridPoint{0});
  ASSERT_EQ(slice.size(), 50u);
  EXPECT_DOUBLE_EQ(slice.front().cost, d.Cmin());
  EXPECT_DOUBLE_EQ(slice.back().cost, d.Cmax());
  for (size_t i = 1; i < slice.size(); ++i) {
    EXPECT_GE(slice[i].cost, slice[i - 1].cost * (1 - 1e-9));
    EXPECT_GT(slice[i].selectivity, slice[i - 1].selectivity);
  }
}

// Multi-dimensional PIC monotonicity across benchmark spaces (coarse grids).
class PicMonotoneSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(PicMonotoneSweep, Holds) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace(GetParam(), tpch, tpcds);
  const Catalog& cat = space.benchmark == "H" ? tpch : tpcds;
  const EssGrid grid(space.query,
                     std::vector<int>(space.query.NumDims(), 5));
  const PlanDiagram d =
      GeneratePosp(space.query, cat, CostParams::Postgres(), grid);
  EXPECT_EQ(CountPicViolations(d), 0) << space.name;
}

INSTANTIATE_TEST_SUITE_P(Spaces, PicMonotoneSweep,
                         ::testing::Values("3D_H_Q5", "4D_H_Q8", "3D_DS_Q96",
                                           "5D_DS_Q19"));

}  // namespace
}  // namespace bouquet

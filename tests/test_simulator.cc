// Tests for bouquet/simulator: completion guarantees, MSO bounds,
// optimized-mode behavior, and bounded cost-model error (Section 3.4).

#include <gtest/gtest.h>

#include "bouquet/bounds.h"
#include "bouquet/simulator.h"
#include "ess/posp_generator.h"
#include "robustness/metrics.h"
#include "workloads/spaces.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

struct Pipeline {
  Pipeline(const std::string& space_name, std::vector<int> res)
      : tpch(MakeTpchCatalog(1.0)),
        tpcds(MakeTpcdsCatalog(100.0)),
        space(GetSpace(space_name, tpch, tpcds)),
        grid(space.query, std::move(res)),
        diagram(GeneratePosp(space.query,
                             space.benchmark == "H" ? tpch : tpcds,
                             CostParams::Postgres(), grid)),
        opt(space.query, space.benchmark == "H" ? tpch : tpcds,
            CostParams::Postgres()),
        bouquet(BuildBouquet(diagram, &opt)) {}

  Catalog tpch, tpcds;
  NamedSpace space;
  EssGrid grid;
  PlanDiagram diagram;
  QueryOptimizer opt;
  PlanBouquet bouquet;
};

TEST(SimulatorTest, BasicCompletesEverywhereNoFallback) {
  Pipeline p("3D_H_Q5", {8, 8, 8});
  BouquetSimulator sim(p.bouquet, p.diagram, &p.opt);
  for (uint64_t qa = 0; qa < p.grid.num_points(); ++qa) {
    const SimResult run = sim.RunBasic(qa);
    EXPECT_TRUE(run.completed);
    EXPECT_FALSE(run.fallback_used) << "qa=" << qa;
    EXPECT_GE(sim.SubOpt(run, qa), 1.0 - 1e-9);
  }
}

TEST(SimulatorTest, OptimizedCompletesEverywhereNoFallback) {
  Pipeline p("3D_H_Q5", {8, 8, 8});
  BouquetSimulator sim(p.bouquet, p.diagram, &p.opt);
  for (uint64_t qa = 0; qa < p.grid.num_points(); ++qa) {
    const SimResult run = sim.RunOptimized(qa);
    EXPECT_TRUE(run.completed);
    EXPECT_FALSE(run.fallback_used) << "qa=" << qa;
  }
}

TEST(SimulatorTest, BasicMsoWithinTheoreticalBound) {
  Pipeline p("3D_DS_Q96", {8, 8, 8});
  // Use restart accounting (no continuation) to match the Theorem 3
  // analysis exactly.
  SimOptions opts;
  opts.continue_same_plan = false;
  BouquetSimulator sim(p.bouquet, p.diagram, &p.opt, opts);
  const double bound = MultiDMsoBound(2.0, p.bouquet.rho(), 0.2);
  for (uint64_t qa = 0; qa < p.grid.num_points(); ++qa) {
    const SimResult run = sim.RunBasic(qa);
    EXPECT_LE(sim.SubOpt(run, qa), bound * (1 + 1e-6)) << "qa=" << qa;
  }
}

TEST(SimulatorTest, ContinuationNeverWorseThanRestart) {
  Pipeline p("3D_H_Q7", {8, 8, 8});
  SimOptions restart;
  restart.continue_same_plan = false;
  BouquetSimulator sim_cont(p.bouquet, p.diagram, &p.opt);
  BouquetSimulator sim_rest(p.bouquet, p.diagram, &p.opt, restart);
  for (uint64_t qa = 0; qa < p.grid.num_points(); qa += 7) {
    const double cont = sim_cont.RunBasic(qa).total_cost;
    const double rest = sim_rest.RunBasic(qa).total_cost;
    EXPECT_LE(cont, rest * (1 + 1e-9)) << "qa=" << qa;
  }
}

TEST(SimulatorTest, OptimizedNoWorseOnAverage) {
  Pipeline p("5D_DS_Q19", {5, 5, 5, 5, 5});
  BouquetSimulator sim(p.bouquet, p.diagram, &p.opt);
  const BouquetProfile basic = ComputeBouquetProfile(sim, false);
  const BouquetProfile optimized = ComputeBouquetProfile(sim, true);
  EXPECT_FALSE(basic.any_fallback);
  EXPECT_FALSE(optimized.any_fallback);
  // The optimizations (first-quadrant pruning, early jumps) should pay off
  // in executions and not blow up ASO.
  EXPECT_LE(optimized.avg_executions, basic.avg_executions * 1.05);
  EXPECT_LE(optimized.aso, basic.aso * 1.5);
}

TEST(SimulatorTest, FirstQuadrantInvariantHolds) {
  // Section 5.2: the running location q_run must never overestimate the
  // actual location in any dimension, and must advance monotonically.
  Pipeline p("3D_H_Q5", {8, 8, 8});
  BouquetSimulator sim(p.bouquet, p.diagram, &p.opt);
  for (uint64_t qa = 0; qa < p.grid.num_points(); qa += 3) {
    const GridPoint qa_pt = p.grid.PointAt(qa);
    const SimResult run = sim.RunOptimized(qa);
    ASSERT_EQ(run.qrun_trace.size(), run.steps.size());
    GridPoint prev(p.grid.dims(), 0);
    for (const GridPoint& qrun : run.qrun_trace) {
      EXPECT_TRUE(EssGrid::Dominates(qrun, qa_pt))
          << "q_run overtook q_a at qa=" << qa;
      EXPECT_TRUE(EssGrid::Dominates(prev, qrun))
          << "q_run regressed at qa=" << qa;
      prev = qrun;
    }
  }
}

TEST(SimulatorTest, QrunConvergesTowardQa) {
  // Discovery should actually move: for a far-corner q_a, the final q_run
  // must strictly dominate the origin.
  Pipeline p("3D_DS_Q96", {8, 8, 8});
  BouquetSimulator sim(p.bouquet, p.diagram, &p.opt);
  const uint64_t qa = p.grid.num_points() - 1;
  const SimResult run = sim.RunOptimized(qa);
  ASSERT_TRUE(run.completed);
  ASSERT_FALSE(run.qrun_trace.empty());
  const GridPoint& last = run.qrun_trace.back();
  int total = 0;
  for (int d = 0; d < p.grid.dims(); ++d) total += last[d];
  EXPECT_GT(total, 0) << "no selectivity learning happened";
}

TEST(SimulatorTest, SubOptAtLeastOne) {
  Pipeline p("3D_DS_Q15", {6, 6, 6});
  BouquetSimulator sim(p.bouquet, p.diagram, &p.opt);
  for (uint64_t qa = 0; qa < p.grid.num_points(); qa += 11) {
    EXPECT_GE(sim.SubOpt(sim.RunBasic(qa), qa), 1.0 - 1e-9);
    EXPECT_GE(sim.SubOpt(sim.RunOptimized(qa), qa), 1.0 - 1e-9);
  }
}

TEST(SimulatorTest, StepLogsConsistent) {
  Pipeline p("3D_H_Q5", {8, 8, 8});
  BouquetSimulator sim(p.bouquet, p.diagram, &p.opt);
  const uint64_t qa = p.grid.num_points() - 1;  // max corner
  const SimResult run = sim.RunBasic(qa);
  ASSERT_TRUE(run.completed);
  double total = 0.0;
  for (const auto& s : run.steps) total += s.charged;
  EXPECT_NEAR(total, run.total_cost, total * 1e-9);
  EXPECT_EQ(run.steps.size(), static_cast<size_t>(run.num_executions));
  EXPECT_TRUE(run.steps.back().completed);
  for (size_t i = 0; i + 1 < run.steps.size(); ++i) {
    EXPECT_FALSE(run.steps[i].completed);
    EXPECT_LE(run.steps[i].contour, run.steps[i + 1].contour);
  }
}

TEST(SimulatorTest, CostMatrixMatchesRecost) {
  Pipeline p("3D_H_Q5", {6, 6, 6});
  BouquetSimulator sim(p.bouquet, p.diagram, &p.opt);
  for (int pid : p.bouquet.plan_ids) {
    for (uint64_t q = 0; q < p.grid.num_points(); q += 31) {
      const double direct =
          p.opt.CostPlanAt(*p.diagram.plan(pid).root, p.grid.SelectivityAt(q));
      EXPECT_DOUBLE_EQ(sim.EstimatedCost(pid, q), direct);
    }
  }
}

// Section 3.4: bounded modeling error inflates the worst-case *guarantee*
// by at most (1+delta)^2.
class ModelErrorSweep : public ::testing::TestWithParam<double> {};

TEST_P(ModelErrorSweep, MsoInflationBounded) {
  const double delta = GetParam();
  Pipeline p("3D_DS_Q96", {7, 7, 7});
  SimOptions opts;
  opts.model_error_delta = delta;
  BouquetSimulator noisy(p.bouquet, p.diagram, &p.opt, opts);

  double mso_noisy = 0.0;
  for (uint64_t qa = 0; qa < p.grid.num_points(); ++qa) {
    mso_noisy = std::max(mso_noisy, noisy.SubOpt(noisy.RunBasic(qa), qa));
  }
  const double guarantee = MultiDMsoBound(2.0, p.bouquet.rho(), 0.2);
  EXPECT_LE(mso_noisy, guarantee * ModelErrorInflation(delta) * (1 + 1e-9))
      << "delta=" << delta;
}

INSTANTIATE_TEST_SUITE_P(Deltas, ModelErrorSweep,
                         ::testing::Values(0.1, 0.2, 0.4));

}  // namespace
}  // namespace bouquet

// Tests for bouquet/driver: real-data bouquet execution (the Table 3
// machinery) — correctness of results, budget compliance, selectivity
// learning, and basic-vs-optimized behavior.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "bouquet/driver.h"
#include "ess/posp_generator.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

class DriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchDataOptions opts;
    opts.mini_scale = 0.2;  // lineitem ~12000 rows
    MakeTpchDatabase(&db_, opts);
    SyncTpchCatalog(db_, &catalog_);
    query_ = Make2DHQ8a(catalog_);
    // True location q_a ~ (33.7%, 45.6%) as in the paper's Section 6.7.
    achieved_ = BindSelectionConstants(&query_, catalog_, {0.337, 0.456});
    ASSERT_TRUE(query_.Validate(catalog_).ok());
    opt_ = std::make_unique<QueryOptimizer>(query_, catalog_,
                                            CostParams::Postgres());
    grid_ = std::make_unique<EssGrid>(query_, std::vector<int>{16, 16});
    diagram_ = std::make_unique<PlanDiagram>(
        GeneratePosp(query_, catalog_, CostParams::Postgres(), *grid_));
    bouquet_ = std::make_unique<PlanBouquet>(
        BuildBouquet(*diagram_, opt_.get()));
  }

  int64_t TrueResultCount() {
    const Plan plan = opt_->OptimizeAt(achieved_);
    BouquetDriver driver(*bouquet_, *diagram_, opt_.get(), &db_);
    return driver.RunSinglePlan(*plan.root).rows.size();
  }

  Database db_;
  Catalog catalog_;
  QuerySpec query_;
  std::vector<double> achieved_;
  std::unique_ptr<QueryOptimizer> opt_;
  std::unique_ptr<EssGrid> grid_;
  std::unique_ptr<PlanDiagram> diagram_;
  std::unique_ptr<PlanBouquet> bouquet_;
};

TEST_F(DriverTest, BasicProducesCorrectResult) {
  const int64_t expected = TrueResultCount();
  ASSERT_GT(expected, 0);
  BouquetDriver driver(*bouquet_, *diagram_, opt_.get(), &db_);
  const DriverResult res = driver.RunBasic();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(static_cast<int64_t>(res.rows.size()), expected);
  EXPECT_GE(res.num_executions, 1);
}

TEST_F(DriverTest, OptimizedProducesCorrectResult) {
  const int64_t expected = TrueResultCount();
  BouquetDriver driver(*bouquet_, *diagram_, opt_.get(), &db_);
  const DriverResult res = driver.RunOptimized();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(static_cast<int64_t>(res.rows.size()), expected);
}

TEST_F(DriverTest, BasicBudgetsRespected) {
  BouquetDriver driver(*bouquet_, *diagram_, opt_.get(), &db_);
  const DriverResult res = driver.RunBasic();
  for (const auto& step : res.steps) {
    if (!step.completed && std::isfinite(step.budget)) {
      // Aborted executions stop within a whisker of the budget.
      EXPECT_LE(step.charged, step.budget * 1.01 + 10.0);
    }
  }
}

TEST_F(DriverTest, BasicMultiplePartialExecutionsBeforeCompletion) {
  // q_a is large (33.7%, 45.6%), so the cheap early contours must fail
  // first — the hallmark of the bouquet discovery process.
  BouquetDriver driver(*bouquet_, *diagram_, opt_.get(), &db_);
  const DriverResult res = driver.RunBasic();
  EXPECT_GE(res.num_executions, 3);
  EXPECT_GE(res.contours_crossed, 2);
}

TEST_F(DriverTest, OptimizedUsesSpillsAndLearns) {
  BouquetDriver driver(*bouquet_, *diagram_, opt_.get(), &db_);
  const DriverResult res = driver.RunOptimized();
  bool any_spill = false;
  for (const auto& step : res.steps) any_spill |= step.spilled;
  EXPECT_TRUE(any_spill);
  // The final step is a completed generic execution.
  EXPECT_TRUE(res.steps.back().completed);
  EXPECT_FALSE(res.steps.back().spilled);
}

TEST_F(DriverTest, RepeatableExecutionSequence) {
  BouquetDriver d1(*bouquet_, *diagram_, opt_.get(), &db_);
  const DriverResult a = d1.RunBasic();
  BouquetDriver d2(*bouquet_, *diagram_, opt_.get(), &db_);
  const DriverResult b = d2.RunBasic();
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].plan_signature, b.steps[i].plan_signature);
    EXPECT_EQ(a.steps[i].contour, b.steps[i].contour);
  }
}

TEST_F(DriverTest, SubOptimalityComparableToNat) {
  // NAT with a badly wrong estimate (the paper's AVI scenario) vs BOU.
  const DimVector bad_estimate = {1e-3, 1e-3};
  const Plan nat_plan = opt_->OptimizeAt(bad_estimate);
  BouquetDriver driver(*bouquet_, *diagram_, opt_.get(), &db_);
  const DriverResult nat = driver.RunSinglePlan(*nat_plan.root);
  const DriverResult bou = driver.RunBasic();
  const Plan oracle_plan = opt_->OptimizeAt(achieved_);
  const DriverResult oracle = driver.RunSinglePlan(*oracle_plan.root);
  ASSERT_GT(oracle.total_cost_units, 0.0);
  const double nat_subopt = nat.total_cost_units / oracle.total_cost_units;
  const double bou_subopt = bou.total_cost_units / oracle.total_cost_units;
  // The bouquet's discovery overhead is bounded; NAT's error is not.
  EXPECT_LT(bou_subopt, 4.0 * 1.2 * bouquet_->rho() + 1.0);
  EXPECT_GT(nat_subopt, 1.0);
}

TEST(DriverJoinDimTest, LearnsJoinSelectivityFromData) {
  // A join error dimension: only 40% of lineitem rows reference an existing
  // part, so the true join selectivity is 0.4/|part| — below the PK-FK cap
  // the optimizer would assume. The optimized driver must discover it from
  // instrumented tuple counts and still return the correct result.
  Database db;
  TpchDataOptions opts;
  opts.mini_scale = 0.2;
  opts.part_match_fraction = 0.4;
  MakeTpchDatabase(&db, opts);
  Catalog catalog;
  SyncTpchCatalog(db, &catalog);

  QuerySpec q;
  q.name = "join_dim_query";
  q.tables = {"part", "lineitem", "orders"};
  q.joins = {JoinPredicate{"part", "p_partkey", "lineitem", "l_partkey",
                           -1.0},
             JoinPredicate{"lineitem", "l_orderkey", "orders", "o_orderkey",
                           -1.0}};
  ErrorDimension d;
  d.kind = DimKind::kJoin;
  d.predicate_index = 0;
  const double n_part = catalog.GetTable("part").stats.row_count;
  d.hi = 1.0 / n_part;
  d.lo = d.hi * 1e-3;
  d.label = "p_partkey=l_partkey";
  q.error_dims = {d};
  ASSERT_TRUE(q.Validate(catalog).ok());

  QueryOptimizer opt(q, catalog, CostParams::Postgres());
  const EssGrid grid(q, {24});
  const PlanDiagram diagram =
      GeneratePosp(q, catalog, CostParams::Postgres(), grid);
  const PlanBouquet bouquet = BuildBouquet(diagram, &opt);
  BouquetDriver driver(bouquet, diagram, &opt, &db);

  const DriverResult res = driver.RunOptimized();
  ASSERT_TRUE(res.completed);
  // Reference result via a single unbudgeted plan.
  const Plan oracle = opt.OptimizeAt({0.4 / n_part});
  const DriverResult ref = driver.RunSinglePlan(*oracle.root);
  EXPECT_EQ(res.rows.size(), ref.rows.size());
  // The discovered join selectivity is a lower bound on the truth and, once
  // the error node completed, close to it.
  ASSERT_EQ(res.discovered_selectivities.size(), 1u);
  const double truth = 0.4 / n_part;
  EXPECT_LE(res.discovered_selectivities[0], truth * 1.05);
  EXPECT_GE(res.discovered_selectivities[0], truth * 0.2);
}

TEST_F(DriverTest, RunSinglePlanEmitsStepAndIdentity) {
  // Regression: RunSinglePlan used to return with final_plan == -1, an
  // empty signature, and no DriverStep at all, so NAT baselines vanished
  // from any aggregation over steps.
  const Plan plan = opt_->OptimizeAt(achieved_);
  BouquetDriver driver(*bouquet_, *diagram_, opt_.get(), &db_);
  const DriverResult res = driver.RunSinglePlan(*plan.root);
  ASSERT_TRUE(res.completed);
  EXPECT_FALSE(res.final_plan_signature.empty());
  EXPECT_EQ(res.final_plan_signature, plan.signature);
  // The optimal plan at a grid-adjacent location is interned in the POSP
  // diagram iff its signature matches one of the diagram's plans; either
  // way final_plan must agree with FindPlan, not stay at a stale default.
  EXPECT_EQ(res.final_plan, diagram_->FindPlan(plan.signature));
  ASSERT_EQ(res.steps.size(), 1u);
  const DriverStep& step = res.steps.front();
  EXPECT_EQ(step.contour, -1);  // native run: no contour
  EXPECT_EQ(step.plan_signature, plan.signature);
  EXPECT_TRUE(step.completed);
  EXPECT_FALSE(std::isfinite(step.budget));
  EXPECT_GT(step.charged, 0.0);
  EXPECT_EQ(step.charged, res.total_cost_units);
}

TEST_F(DriverTest, FinalPlanSignatureSetOnCompletion) {
  BouquetDriver d1(*bouquet_, *diagram_, opt_.get(), &db_);
  const DriverResult basic = d1.RunBasic();
  ASSERT_TRUE(basic.completed);
  EXPECT_FALSE(basic.final_plan_signature.empty());
  EXPECT_EQ(basic.final_plan_signature, basic.steps.back().plan_signature);
  EXPECT_EQ(basic.final_plan, basic.steps.back().plan_id);

  BouquetDriver d2(*bouquet_, *diagram_, opt_.get(), &db_);
  const DriverResult optimized = d2.RunOptimized();
  ASSERT_TRUE(optimized.completed);
  // The optimized final execution may pick a plan outside the POSP, in
  // which case final_plan is the documented -1 sentinel — but the
  // signature identity must be recorded regardless.
  EXPECT_FALSE(optimized.final_plan_signature.empty());
  EXPECT_EQ(optimized.final_plan_signature,
            optimized.steps.back().plan_signature);
  if (optimized.final_plan >= 0) {
    EXPECT_EQ(diagram_->plan(optimized.final_plan).signature,
              optimized.final_plan_signature);
  } else {
    EXPECT_EQ(diagram_->FindPlan(optimized.final_plan_signature), -1);
  }
}

TEST_F(DriverTest, EmptyContourSafetyNet) {
  // Regression: a bouquet with no contours made RunBasic dereference
  // contours.back() — UB. The safety net must instead fall back to the
  // diagram's max-corner plan and still produce the correct result.
  PlanBouquet empty = *bouquet_;
  empty.contours.clear();
  BouquetDriver driver(empty, *diagram_, opt_.get(), &db_);
  const DriverResult res = driver.RunBasic();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.num_executions, 1);
  EXPECT_EQ(res.contours_crossed, 0);
  const uint64_t corner =
      diagram_->grid().LinearIndex(diagram_->grid().MaxCorner());
  EXPECT_EQ(res.final_plan, diagram_->plan_at(corner));
  EXPECT_FALSE(res.final_plan_signature.empty());
  ASSERT_EQ(res.steps.size(), 1u);
  EXPECT_FALSE(std::isfinite(res.steps.front().budget));
  EXPECT_EQ(static_cast<int64_t>(res.rows.size()), TrueResultCount());
}

TEST_F(DriverTest, AllBudgetsExceededFallsBackAndCountsContours) {
  // Shrink every contour budget below any plan's true cost: every budgeted
  // execution aborts and the safety net must finish the query. Regression:
  // the fallback used to leave contours_crossed at the index of the last
  // contour instead of recording that all of them were crossed.
  PlanBouquet starved = *bouquet_;
  for (BouquetContour& c : starved.contours) c.budget = 1.0;
  BouquetDriver driver(starved, *diagram_, opt_.get(), &db_);
  const DriverResult res = driver.RunBasic();
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.contours_crossed,
            static_cast<int>(starved.contours.size()));
  // One aborted execution per distinct plan per contour, plus the fallback.
  int aborted = 0;
  for (const DriverStep& s : res.steps) aborted += s.completed ? 0 : 1;
  EXPECT_EQ(aborted, res.num_executions - 1);
  const DriverStep& last = res.steps.back();
  EXPECT_TRUE(last.completed);
  EXPECT_FALSE(std::isfinite(last.budget));
  EXPECT_EQ(last.contour, static_cast<int>(starved.contours.size()));
  EXPECT_EQ(res.final_plan, last.plan_id);
  EXPECT_EQ(static_cast<int64_t>(res.rows.size()), TrueResultCount());
}

TEST_F(DriverTest, SmallSelectivityFinishesEarly) {
  // Rebind to a tiny q_a: the first contours should already complete.
  QuerySpec tiny = Make2DHQ8a(catalog_);
  BindSelectionConstants(&tiny, catalog_, {0.002, 0.002});
  QueryOptimizer opt(tiny, catalog_, CostParams::Postgres());
  const EssGrid grid(tiny, {16, 16});
  const PlanDiagram diagram =
      GeneratePosp(tiny, catalog_, CostParams::Postgres(), grid);
  const PlanBouquet bouquet = BuildBouquet(diagram, &opt);
  BouquetDriver driver(bouquet, diagram, &opt, &db_);
  const DriverResult res = driver.RunBasic();
  EXPECT_TRUE(res.completed);
  EXPECT_LE(res.contours_crossed, 2);
}

}  // namespace
}  // namespace bouquet

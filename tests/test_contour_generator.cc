// Tests for ess/contour_generator: the compile-time-efficient contour-
// focused POSP generation (Section 4.2) against exhaustive generation.

#include <gtest/gtest.h>

#include <set>

#include "bouquet/contours.h"
#include "ess/contour_generator.h"
#include "ess/posp_generator.h"
#include "workloads/spaces.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

class ContourGenTest : public ::testing::Test {
 protected:
  ContourGenTest()
      : tpch_(MakeTpchCatalog(1.0)),
        tpcds_(MakeTpcdsCatalog(100.0)),
        space_(GetSpace("3D_H_Q5", tpch_, tpcds_)),
        grid_(space_.query, {10, 10, 10}),
        exhaustive_(GeneratePosp(space_.query, tpch_,
                                 CostParams::Postgres(), grid_)),
        sparse_(GenerateContourPosp(space_.query, tpch_,
                                    CostParams::Postgres(), grid_, 2.0)) {}

  Catalog tpch_, tpcds_;
  NamedSpace space_;
  EssGrid grid_;
  PlanDiagram exhaustive_;
  SparsePosp sparse_;
};

TEST_F(ContourGenTest, CornerCostsMatchExhaustive) {
  EXPECT_NEAR(sparse_.cmin, exhaustive_.Cmin(), exhaustive_.Cmin() * 1e-9);
  EXPECT_NEAR(sparse_.cmax, exhaustive_.Cmax(), exhaustive_.Cmax() * 1e-9);
}

TEST_F(ContourGenTest, OptimizedEntriesMatchExhaustive) {
  for (const auto& [linear, entry] : sparse_.entries) {
    EXPECT_NEAR(entry.second, exhaustive_.cost_at(linear),
                exhaustive_.cost_at(linear) * 1e-9);
    EXPECT_EQ(sparse_.plans[entry.first].signature,
              exhaustive_.plan(exhaustive_.plan_at(linear)).signature);
  }
}

TEST_F(ContourGenTest, FewerOptimizerCalls) {
  EXPECT_LT(sparse_.optimizer_calls,
            static_cast<long long>(grid_.num_points()));
  EXPECT_GT(sparse_.optimizer_calls, 0);
}

TEST_F(ContourGenTest, StepsMatchExhaustiveLadder) {
  const ContourSet cs = IdentifyContours(exhaustive_, 2.0);
  ASSERT_EQ(sparse_.steps.size(), cs.step_costs.size());
  for (size_t k = 0; k < cs.step_costs.size(); ++k) {
    EXPECT_NEAR(sparse_.steps[k], cs.step_costs[k],
                cs.step_costs[k] * 1e-9);
  }
}

TEST_F(ContourGenTest, BandCoverageIncludesExhaustiveFrontier) {
  // Every frontier point found by the exhaustive method must have been
  // optimized by the contour-focused pass (the "band" property).
  const ContourSet cs = IdentifyContours(exhaustive_, 2.0);
  long long missing = 0, total = 0;
  for (const auto& pts : cs.points) {
    for (uint64_t p : pts) {
      ++total;
      if (!sparse_.entries.count(p)) ++missing;
    }
  }
  EXPECT_EQ(missing, 0) << missing << "/" << total
                        << " frontier points unoptimized";
}

TEST_F(ContourGenTest, SparseContoursCoverFrontierPlans) {
  // The plans surfaced on sparse contours must include every plan that the
  // exhaustive frontier carries (bouquet completeness).
  const ContourSet cs = IdentifyContours(exhaustive_, 2.0);
  const auto sparse_contours = ExtractSparseContours(sparse_, grid_);
  ASSERT_EQ(sparse_contours.size(), cs.points.size());
  std::set<std::string> sparse_sigs;
  for (const auto& contour : sparse_contours) {
    for (uint64_t p : contour) {
      sparse_sigs.insert(
          sparse_.plans[sparse_.entries.at(p).first].signature);
    }
  }
  std::set<std::string> exhaustive_sigs;
  for (const auto& pts : cs.points) {
    for (uint64_t p : pts) {
      exhaustive_sigs.insert(
          exhaustive_.plan(exhaustive_.plan_at(p)).signature);
    }
  }
  for (const auto& sig : exhaustive_sigs) {
    EXPECT_TRUE(sparse_sigs.count(sig)) << "missing plan " << sig;
  }
}

TEST(ContourGen1DTest, MatchesExhaustiveExactly) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const QuerySpec q = MakeEqQuery(tpch);
  const EssGrid grid(q, {40});
  const PlanDiagram ex = GeneratePosp(q, tpch, CostParams::Postgres(), grid);
  const SparsePosp sp =
      GenerateContourPosp(q, tpch, CostParams::Postgres(), grid, 2.0);
  const ContourSet cs = IdentifyContours(ex, 2.0);
  const auto sparse_contours = ExtractSparseContours(sp, grid);
  ASSERT_EQ(sparse_contours.size(), cs.points.size());
  // In 1D both methods find the same single frontier point per step.
  for (size_t k = 0; k < cs.points.size(); ++k) {
    ASSERT_EQ(sparse_contours[k].size(), 1u) << "contour " << k;
    EXPECT_EQ(sparse_contours[k][0], cs.points[k][0]) << "contour " << k;
  }
}

}  // namespace
}  // namespace bouquet

// Tests for workloads/: catalogs, data generation, and the benchmark error
// spaces (their geometry must match the paper's Table 2).

#include <gtest/gtest.h>

#include "query/join_graph.h"
#include "workloads/spaces.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

TEST(TpchCatalogTest, ScaleFactorScalesFactTables) {
  const Catalog sf1 = MakeTpchCatalog(1.0);
  const Catalog sf10 = MakeTpchCatalog(10.0);
  EXPECT_DOUBLE_EQ(sf1.GetTable("lineitem").stats.row_count, 6000000);
  EXPECT_DOUBLE_EQ(sf10.GetTable("lineitem").stats.row_count, 60000000);
  EXPECT_DOUBLE_EQ(sf1.GetTable("region").stats.row_count, 5);
  EXPECT_DOUBLE_EQ(sf10.GetTable("region").stats.row_count, 5);
}

TEST(TpchCatalogTest, AllQueryColumnsIndexed) {
  const Catalog c = MakeTpchCatalog(1.0);
  for (const char* t : {"part", "lineitem", "orders", "customer",
                        "supplier", "nation", "region", "partsupp"}) {
    const TableInfo& info = c.GetTable(t);
    for (const auto& col : info.columns) {
      EXPECT_TRUE(col.has_index) << t << "." << col.name;
    }
  }
}

TEST(TpcdsCatalogTest, Sf100RowCounts) {
  const Catalog c = MakeTpcdsCatalog(100.0);
  EXPECT_DOUBLE_EQ(c.GetTable("store_sales").stats.row_count, 288000000);
  EXPECT_DOUBLE_EQ(c.GetTable("date_dim").stats.row_count, 73049);
}

TEST(TpchDataTest, GeneratesConsistentTables) {
  Database db;
  TpchDataOptions opts;
  opts.mini_scale = 0.5;
  MakeTpchDatabase(&db, opts);
  EXPECT_EQ(db.table("lineitem").num_rows(), 30000);
  EXPECT_EQ(db.table("orders").num_rows(), 7500);
  EXPECT_EQ(db.table("part").num_rows(), 1000);
  EXPECT_EQ(db.table("region").num_rows(), 5);
}

TEST(TpchDataTest, ForeignKeyIntegrity) {
  Database db;
  MakeTpchDatabase(&db);
  const DataTable& orders = db.table("orders");
  const DataTable& customer = db.table("customer");
  const int64_t n_cust = customer.num_rows();
  const int fk = orders.ColumnIndex("o_custkey");
  for (int64_t r = 0; r < orders.num_rows(); ++r) {
    const int64_t v = orders.value(fk, r);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, n_cust);
  }
}

TEST(TpchDataTest, DeterministicUnderSeed) {
  Database a, b;
  MakeTpchDatabase(&a);
  MakeTpchDatabase(&b);
  EXPECT_EQ(a.table("lineitem").column(4), b.table("lineitem").column(4));
}

TEST(TpchDataTest, SyncCatalogProducesHistograms) {
  Database db;
  MakeTpchDatabase(&db);
  Catalog c;
  SyncTpchCatalog(db, &c);
  const TableInfo& part = c.GetTable("part");
  const ColumnInfo& price = part.columns[part.ColumnIndex("p_retailprice")];
  EXPECT_FALSE(price.stats.histogram.empty());
  EXPECT_DOUBLE_EQ(part.stats.row_count, 2000);
}

// ---------------------------------------------------------------------------
// Benchmark spaces (Table 2 replicas)
// ---------------------------------------------------------------------------

struct SpaceExpectation {
  const char* name;
  const char* geometry;
  int relations;
  int dims;
};

class SpaceSweep : public ::testing::TestWithParam<SpaceExpectation> {};

TEST_P(SpaceSweep, MatchesTableTwo) {
  const SpaceExpectation e = GetParam();
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace(e.name, tpch, tpcds);
  const Catalog& cat = space.benchmark == "H" ? tpch : tpcds;
  EXPECT_TRUE(space.query.Validate(cat).ok()) << e.name;
  EXPECT_EQ(static_cast<int>(space.query.tables.size()), e.relations);
  EXPECT_EQ(space.query.NumDims(), e.dims);
  EXPECT_EQ(JoinGraph(space.query).Geometry(), e.geometry) << e.name;
}

INSTANTIATE_TEST_SUITE_P(
    Spaces, SpaceSweep,
    ::testing::Values(SpaceExpectation{"3D_H_Q5", "chain", 6, 3},
                      SpaceExpectation{"3D_H_Q7", "chain", 6, 3},
                      SpaceExpectation{"4D_H_Q8", "branch", 8, 4},
                      SpaceExpectation{"5D_H_Q7", "chain", 6, 5},
                      SpaceExpectation{"3D_DS_Q15", "chain", 4, 3},
                      SpaceExpectation{"3D_DS_Q96", "star", 4, 3},
                      SpaceExpectation{"4D_DS_Q7", "star", 5, 4},
                      SpaceExpectation{"4D_DS_Q26", "star", 5, 4},
                      SpaceExpectation{"4D_DS_Q91", "branch", 7, 4},
                      SpaceExpectation{"5D_DS_Q19", "branch", 6, 5}));

TEST(SpacesTest, JoinDimsCappedAtPkReciprocal) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  for (const auto& space : BenchmarkSpaces(tpch, tpcds)) {
    for (const auto& d : space.query.error_dims) {
      EXPECT_EQ(d.kind, DimKind::kJoin);
      EXPECT_GT(d.lo, 0.0);
      EXPECT_LT(d.hi, 1.0);  // PK reciprocal is far below 1
      EXPECT_LT(d.lo, d.hi);
    }
  }
}

TEST(SpacesTest, EqQueryIs1D) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const QuerySpec eq = MakeEqQuery(tpch);
  EXPECT_TRUE(eq.Validate(tpch).ok());
  EXPECT_EQ(eq.NumDims(), 1);
  EXPECT_EQ(eq.tables.size(), 3u);
  EXPECT_EQ(eq.error_dims[0].kind, DimKind::kSelection);
}

TEST(SpacesTest, SelectionVariantsValidate) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  EXPECT_TRUE(Make2DHQ8a(tpch).Validate(tpch).ok());
  EXPECT_TRUE(Make3DHQ5b(tpch).Validate(tpch).ok());
  EXPECT_TRUE(Make4DHQ8b(tpch).Validate(tpch).ok());
  EXPECT_EQ(Make3DHQ5b(tpch).NumDims(), 3);
  EXPECT_EQ(Make4DHQ8b(tpch).NumDims(), 4);
}

TEST(SpacesTest, BindSelectionConstantsAccuracy) {
  Database db;
  MakeTpchDatabase(&db);
  Catalog c;
  SyncTpchCatalog(db, &c);
  QuerySpec q = Make2DHQ8a(c);
  const auto achieved = BindSelectionConstants(&q, c, {0.3, 0.6});
  ASSERT_EQ(achieved.size(), 2u);
  EXPECT_NEAR(achieved[0], 0.3, 0.05);
  EXPECT_NEAR(achieved[1], 0.6, 0.05);
  EXPECT_TRUE(q.filters[0].has_constant());
  EXPECT_TRUE(q.filters[1].has_constant());
}

TEST(SpacesTest, GetSpaceReturnsRequested) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  EXPECT_EQ(GetSpace("5D_DS_Q19", tpch, tpcds).name, "5D_DS_Q19");
  EXPECT_EQ(GetSpace("3D_H_Q5", tpch, tpcds).benchmark, "H");
}

}  // namespace
}  // namespace bouquet

// Coverage for service/template_key: invariance to error-dimension constant
// bindings (the property that lets the bouquet cache amortize across a
// form's invocations) and collision-freedom across structurally distinct
// templates in a 10k-sample fuzz loop.

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "service/template_key.h"
#include "testing/generators.h"

namespace bouquet {
namespace {

// A deterministic instance whose first error dimension is a selection
// predicate (join dims disabled), so its constant can be rebound.
FuzzInstance SelectionDimInstance(uint64_t seed) {
  FuzzGenOptions opts;
  opts.allow_join_dims = false;
  return GenerateFuzzInstance(seed, opts);
}

std::string SignatureOf(const FuzzInstance& inst) {
  return TemplateSignature(inst.query, inst.resolutions, inst.cost_params,
                           inst.bouquet_params);
}

TEST(TemplateKey, ErrorDimConstantsHashToTheSameKey) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    FuzzInstance inst = SelectionDimInstance(seed);
    const ErrorDimension& dim = inst.query.error_dims[0];
    ASSERT_EQ(dim.kind, DimKind::kSelection);
    SelectionPredicate& filter = inst.query.filters[dim.predicate_index];

    const std::string base = SignatureOf(inst);
    filter.constant = 12345;
    const std::string bound_a = SignatureOf(inst);
    filter.constant = -999;
    const std::string bound_b = SignatureOf(inst);
    EXPECT_EQ(base, bound_a) << "seed " << seed;
    EXPECT_EQ(bound_a, bound_b) << "seed " << seed;
    EXPECT_EQ(TemplateHash(base), TemplateHash(bound_b));
  }
}

TEST(TemplateKey, DisplayNameIsExcluded) {
  FuzzInstance inst = SelectionDimInstance(3);
  const std::string base = SignatureOf(inst);
  inst.query.name = "completely different display name";
  EXPECT_EQ(base, SignatureOf(inst));
}

TEST(TemplateKey, NonErrorConstantsShiftTheKey) {
  // Constants of error-free predicates bind the POSP geography, so they
  // must be part of the identity.
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    FuzzInstance inst = SelectionDimInstance(seed);
    const ErrorDimension& dim = inst.query.error_dims[0];
    int free_filter = -1;
    for (size_t i = 0; i < inst.query.filters.size(); ++i) {
      if (static_cast<int>(i) != dim.predicate_index) {
        free_filter = static_cast<int>(i);
        break;
      }
    }
    if (free_filter < 0) continue;  // instance has only the error filter
    const std::string base = SignatureOf(inst);
    inst.query.filters[free_filter].constant = 424242;
    EXPECT_NE(base, SignatureOf(inst)) << "seed " << seed;
    return;  // one instance with a free filter suffices
  }
  FAIL() << "no instance with a non-error filter in 40 seeds";
}

TEST(TemplateKey, StructuralPerturbationsChangeTheKey) {
  FuzzInstance inst = GenerateFuzzInstance(17);
  const std::string base = SignatureOf(inst);

  {  // Join order is structural.
    FuzzInstance permuted = inst;
    ASSERT_GE(permuted.query.joins.size(), 1u);
    std::swap(permuted.query.joins.front(), permuted.query.joins.back());
    if (permuted.query.joins.size() > 1) {
      EXPECT_NE(base, SignatureOf(permuted));
    }
  }
  {  // Predicate column is structural.
    FuzzInstance recol = inst;
    recol.query.joins[0].right_column = "pk";
    EXPECT_NE(base, SignatureOf(recol));
  }
  {  // Grid resolution is part of the compiled artifact's identity.
    FuzzInstance res = inst;
    res.resolutions[0] += 1;
    EXPECT_NE(base, SignatureOf(res));
  }
  {  // Bouquet parameterization likewise.
    FuzzInstance params = inst;
    params.bouquet_params.lambda += 0.01;
    EXPECT_NE(base, SignatureOf(params));
  }
}

TEST(TemplateKey, TenThousandSampleFuzzLoopHasNoHashCollisions) {
  // 10k randomized templates: distinct signatures must never collide in
  // the 64-bit hash (a collision would silently alias two templates'
  // bouquets in the service cache).
  FuzzGenOptions opts;
  opts.max_zipf_theta = 0.0;  // skip histogram skew; structure is the point
  std::unordered_map<uint64_t, std::string> seen;
  seen.reserve(1 << 15);
  int distinct = 0;
  for (uint64_t seed = 0; seed < 10000; ++seed) {
    const FuzzInstance inst = GenerateFuzzInstance(seed, opts);
    const std::string sig = SignatureOf(inst);
    const uint64_t hash = TemplateHash(sig);
    auto [it, inserted] = seen.emplace(hash, sig);
    if (inserted) {
      ++distinct;
    } else {
      ASSERT_EQ(it->second, sig)
          << "hash collision between distinct templates at seed " << seed;
    }
  }
  // The generator must actually be exploring template space.
  EXPECT_GT(distinct, 9000);
}

}  // namespace
}  // namespace bouquet

// Edge-case coverage for common/thread_pool: degenerate pool sizes, empty
// and degenerate ParallelFor ranges, nesting from inside pool tasks, and
// exception propagation through Submit futures.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace bouquet {
namespace {

TEST(ThreadPoolEdge, ZeroAndNegativeSizesClampToOneWorker) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1);
  EXPECT_EQ(zero.Submit([] { return 41 + 1; }).get(), 42);

  ThreadPool negative(-4);
  EXPECT_EQ(negative.size(), 1);
  EXPECT_EQ(negative.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolEdge, ParallelForOverEmptyRangeNeverInvokesBody) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  const auto body = [&](uint64_t, uint64_t) { calls.fetch_add(1); };
  pool.ParallelFor(0, 0, 8, body);        // empty
  pool.ParallelFor(5, 5, 8, body);        // empty, nonzero begin
  pool.ParallelFor(10, 3, 8, body);       // inverted
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolEdge, ParallelForZeroGrainIsClampedAndCoversRangeOnce) {
  ThreadPool pool(3);
  constexpr uint64_t kN = 97;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, 0, [&](uint64_t b, uint64_t e) {
    ASSERT_LT(b, e);
    for (uint64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolEdge, NestedParallelForFromPoolTaskCompletes) {
  // A task running *on* the pool forks another ParallelFor across the same
  // pool. The caller self-executes chunks, so this must complete even when
  // every worker is busy (the deadlock-freedom contract the POSP service
  // path relies on).
  ThreadPool pool(2);
  constexpr uint64_t kOuter = 4;
  constexpr uint64_t kInner = 64;
  std::atomic<uint64_t> total{0};
  auto outer = pool.Submit([&] {
    pool.ParallelFor(0, kOuter, 1, [&](uint64_t ob, uint64_t oe) {
      for (uint64_t o = ob; o < oe; ++o) {
        pool.ParallelFor(0, kInner, 8, [&](uint64_t b, uint64_t e) {
          total.fetch_add(e - b);
        });
      }
    });
  });
  outer.get();
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ThreadPoolEdge, SingleWorkerNestedParallelForDoesNotDeadlock) {
  ThreadPool pool(1);
  std::atomic<uint64_t> total{0};
  auto fut = pool.Submit([&] {
    pool.ParallelFor(0, 32, 4, [&](uint64_t b, uint64_t e) {
      total.fetch_add(e - b);
    });
    return true;
  });
  EXPECT_TRUE(fut.get());
  EXPECT_EQ(total.load(), 32u);
}

TEST(ThreadPoolEdge, ExceptionPropagatesThroughSubmitFuture) {
  ThreadPool pool(2);
  auto throwing = pool.Submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(throwing.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.Submit([] { return 5; }).get(), 5);
}

TEST(ThreadPoolEdge, ManyConcurrentSubmitsAllResolve) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(256);
  for (int i = 0; i < 256; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

// Shutdown-drain contract: every task queued before the destructor begins
// runs to completion (ParallelFor straggler helpers rely on this for their
// no-op epilogues). The queue and stop flag are GUARDED_BY(mu_) since the
// capability migration, so the destructor's handshake with the workers'
// condition-variable predicate is verified statically as well.
TEST(ThreadPoolEdge, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  constexpr int kTasks = 64;
  {
    ThreadPool pool(2);
    // A slow first task piles the rest up in the queue, so destruction
    // begins with most tasks still queued rather than running.
    pool.Post([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ran.fetch_add(1);
    });
    for (int i = 1; i < kTasks; ++i) {
      pool.Post([&] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), kTasks);
}

// ParallelFor straggler helpers may still be queued when the loop's caller
// has already returned and dropped its shared LoopState reference; the
// drain keeps them alive until they run their no-op epilogue.
TEST(ThreadPoolEdge, ParallelForStragglersSurvivePoolShutdown) {
  std::atomic<uint64_t> covered{0};
  {
    ThreadPool pool(3);
    for (int round = 0; round < 8; ++round) {
      pool.ParallelFor(0, 64, 1, [&](uint64_t b, uint64_t e) {
        covered.fetch_add(e - b);
      });
    }
    // Destructor runs immediately after: late helpers of the final rounds
    // are likely still queued and must drain without touching freed state.
  }
  EXPECT_EQ(covered.load(), 8u * 64u);
}

}  // namespace
}  // namespace bouquet

// Tests for ess/ess_grid and ess/plan_diagram.

#include <gtest/gtest.h>

#include "ess/ess_grid.h"
#include "ess/plan_diagram.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

QuerySpec TwoDimQuery(const Catalog& cat) {
  QuerySpec q = Make2DHQ8a(cat);
  return q;
}

class EssGridTest : public ::testing::Test {
 protected:
  EssGridTest()
      : catalog_(MakeTpchCatalog(1.0)),
        query_(TwoDimQuery(catalog_)),
        grid_(query_, {4, 6}) {}
  Catalog catalog_;
  QuerySpec query_;
  EssGrid grid_;
};

TEST_F(EssGridTest, Dimensions) {
  EXPECT_EQ(grid_.dims(), 2);
  EXPECT_EQ(grid_.resolution(0), 4);
  EXPECT_EQ(grid_.resolution(1), 6);
  EXPECT_EQ(grid_.num_points(), 24u);
}

TEST_F(EssGridTest, AxisEndpoints) {
  EXPECT_DOUBLE_EQ(grid_.axis(0).front(), query_.error_dims[0].lo);
  EXPECT_DOUBLE_EQ(grid_.axis(0).back(), query_.error_dims[0].hi);
}

TEST_F(EssGridTest, LinearRoundTrip) {
  for (uint64_t i = 0; i < grid_.num_points(); ++i) {
    EXPECT_EQ(grid_.LinearIndex(grid_.PointAt(i)), i);
  }
}

TEST_F(EssGridTest, LinearWithDim) {
  const GridPoint p = {2, 3};
  const uint64_t base = grid_.LinearIndex(p);
  EXPECT_EQ(grid_.LinearWithDim(base, 0, 0), grid_.LinearIndex({0, 3}));
  EXPECT_EQ(grid_.LinearWithDim(base, 1, 5), grid_.LinearIndex({2, 5}));
  EXPECT_EQ(grid_.LinearWithDim(base, 1, 3), base);
}

TEST_F(EssGridTest, SelectivityAt) {
  const DimVector s = grid_.SelectivityAt(GridPoint{0, 5});
  EXPECT_DOUBLE_EQ(s[0], query_.error_dims[0].lo);
  EXPECT_DOUBLE_EQ(s[1], query_.error_dims[1].hi);
}

TEST_F(EssGridTest, AxisFloorCeil) {
  const auto& ax = grid_.axis(0);
  EXPECT_EQ(grid_.AxisFloor(0, ax[2] * 1.0001), 2);
  EXPECT_EQ(grid_.AxisFloor(0, ax[0] / 2), 0);
  EXPECT_EQ(grid_.AxisCeil(0, ax[2] * 1.0001), 3);
  EXPECT_EQ(grid_.AxisCeil(0, ax.back() * 2), 3);
}

TEST_F(EssGridTest, Dominates) {
  EXPECT_TRUE(EssGrid::Dominates({0, 0}, {1, 1}));
  EXPECT_TRUE(EssGrid::Dominates({1, 1}, {1, 1}));
  EXPECT_FALSE(EssGrid::Dominates({2, 0}, {1, 1}));
}

TEST_F(EssGridTest, ForEachVisitsAllInOrder) {
  uint64_t expected = 0;
  grid_.ForEach([&](uint64_t linear, const GridPoint& p) {
    EXPECT_EQ(linear, expected++);
    EXPECT_EQ(grid_.LinearIndex(p), linear);
  });
  EXPECT_EQ(expected, grid_.num_points());
}

TEST_F(EssGridTest, Corners) {
  EXPECT_EQ(grid_.Origin(), (GridPoint{0, 0}));
  EXPECT_EQ(grid_.MaxCorner(), (GridPoint{3, 5}));
}

TEST(EssGridDefaultsTest, ResolutionByDims) {
  EXPECT_EQ(EssGrid::DefaultResolutionForDims(1), 100);
  EXPECT_EQ(EssGrid::DefaultResolutionForDims(3), 20);
  EXPECT_EQ(EssGrid::DefaultResolutionForDims(5), 8);
  EXPECT_EQ(EssGrid::DefaultResolutionForDims(7), 6);
}

TEST(EssGridDefaultsTest, WithDefaultResolution) {
  const Catalog cat = MakeTpchCatalog(1.0);
  const QuerySpec q = MakeEqQuery(cat);
  const EssGrid g = EssGrid::WithDefaultResolution(q);
  EXPECT_EQ(g.dims(), 1);
  EXPECT_EQ(g.num_points(), 100u);
}

// ---------------------------------------------------------------------------
// PlanDiagram
// ---------------------------------------------------------------------------

TEST_F(EssGridTest, DiagramInterning) {
  PlanDiagram d(&grid_);
  Plan p1;
  p1.signature = "sigA";
  Plan p2;
  p2.signature = "sigB";
  EXPECT_EQ(d.InternPlan(p1), 0);
  EXPECT_EQ(d.InternPlan(p2), 1);
  EXPECT_EQ(d.InternPlan(p1), 0);  // dedup by signature
  EXPECT_EQ(d.num_plans(), 2);
  EXPECT_EQ(d.FindPlan("sigB"), 1);
  EXPECT_EQ(d.FindPlan("nope"), -1);
}

TEST_F(EssGridTest, DiagramAssignAndStats) {
  PlanDiagram d(&grid_);
  Plan p1;
  p1.signature = "A";
  Plan p2;
  p2.signature = "B";
  d.InternPlan(p1);
  d.InternPlan(p2);
  for (uint64_t i = 0; i < grid_.num_points(); ++i) {
    d.Set(i, i < 6 ? 0 : 1, 10.0 + double(i));
  }
  EXPECT_DOUBLE_EQ(d.Cmin(), 10.0);
  EXPECT_DOUBLE_EQ(d.Cmax(), 10.0 + 23.0);
  const auto frac = d.RegionFractions();
  EXPECT_NEAR(frac[0], 6.0 / 24.0, 1e-12);
  EXPECT_NEAR(frac[1], 18.0 / 24.0, 1e-12);
}

TEST_F(EssGridTest, DiagramSetAssignments) {
  PlanDiagram d(&grid_);
  Plan p;
  p.signature = "A";
  d.InternPlan(p);
  for (uint64_t i = 0; i < grid_.num_points(); ++i) d.Set(i, 0, 1.0);
  std::vector<int> override_assign(grid_.num_points(), 0);
  d.SetAssignments(override_assign);
  EXPECT_EQ(d.plan_at(0), 0);
}

}  // namespace
}  // namespace bouquet

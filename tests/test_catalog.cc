// Tests for catalog/: table registry, column metadata, statistics structs.

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace bouquet {
namespace {

TEST(CatalogTest, AddAndLookup) {
  Catalog c;
  const int id = c.AddTable(
      Catalog::MakeTable("t", 1000, 64, {"a", "b"}, 100));
  EXPECT_EQ(id, 0);
  EXPECT_TRUE(c.HasTable("t"));
  EXPECT_FALSE(c.HasTable("missing"));
  EXPECT_EQ(c.TableId("t"), 0);
  EXPECT_EQ(c.TableId("missing"), -1);
  EXPECT_EQ(c.num_tables(), 1);
  EXPECT_DOUBLE_EQ(c.GetTable("t").stats.row_count, 1000);
}

TEST(CatalogTest, ReplaceKeepsId) {
  Catalog c;
  c.AddTable(Catalog::MakeTable("t", 1000, 64, {"a"}, 10));
  const int id2 =
      c.AddTable(Catalog::MakeTable("t", 2000, 64, {"a"}, 10));
  EXPECT_EQ(id2, 0);
  EXPECT_EQ(c.num_tables(), 1);
  EXPECT_DOUBLE_EQ(c.GetTable("t").stats.row_count, 2000);
}

TEST(CatalogTest, ColumnIndex) {
  const auto t = Catalog::MakeTable("t", 10, 64, {"x", "y", "z"}, 5);
  EXPECT_EQ(t.ColumnIndex("x"), 0);
  EXPECT_EQ(t.ColumnIndex("z"), 2);
  EXPECT_EQ(t.ColumnIndex("w"), -1);
}

TEST(CatalogTest, MakeTableDefaults) {
  const auto t = Catalog::MakeTable("t", 500, 80, {"a", "b"}, 42, true);
  ASSERT_EQ(t.columns.size(), 2u);
  EXPECT_TRUE(t.columns[0].has_index);
  EXPECT_DOUBLE_EQ(t.columns[0].stats.ndv, 42);
  const auto t2 = Catalog::MakeTable("t2", 500, 80, {"a"}, 42, false);
  EXPECT_FALSE(t2.columns[0].has_index);
}

TEST(CatalogTest, MutableAccess) {
  Catalog c;
  c.AddTable(Catalog::MakeTable("t", 10, 64, {"a"}, 5));
  c.GetMutableTable("t").stats.row_count = 77;
  EXPECT_DOUBLE_EQ(c.GetTable("t").stats.row_count, 77);
}

TEST(StatsTest, EqualitySelectivity) {
  ColumnStats s;
  s.ndv = 100;
  EXPECT_DOUBLE_EQ(s.EqualitySelectivity(), 0.01);
  s.ndv = 0.5;  // degenerate NDV clamps to 1
  EXPECT_DOUBLE_EQ(s.EqualitySelectivity(), 1.0);
}

TEST(StatsTest, PagesFloorOne) {
  TableStats t;
  t.row_count = 10;
  t.row_width_bytes = 8;
  EXPECT_DOUBLE_EQ(t.Pages(8192), 1.0);
  t.row_count = 100000;
  t.row_width_bytes = 100;
  EXPECT_NEAR(t.Pages(8192), 100000.0 * 100 / 8192, 1e-9);
}

TEST(CatalogTest, GetTableById) {
  Catalog c;
  c.AddTable(Catalog::MakeTable("a", 1, 64, {"x"}, 1));
  c.AddTable(Catalog::MakeTable("b", 2, 64, {"x"}, 1));
  EXPECT_EQ(c.GetTableById(1).name, "b");
}

}  // namespace
}  // namespace bouquet

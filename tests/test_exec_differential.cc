// Batch-vs-scalar executor differential tests.
//
// The vectorized engine's whole contract is bit-compatibility with the
// scalar oracle: identical charged cost, identical abort points under any
// budget, identical result rows and per-node counters. These tests check
// that contract three ways: a seeded fuzz sweep through the differential
// harness (scaled up by BOUQUET_EXEC_DIFF_ITERS for scheduled runs),
// hand-built degenerate shapes (empty inputs, single rows, everything
// filtered, batch size 1), and a full BouquetDriver matrix asserting the
// driver's DriverStep sequences are byte-identical across engines.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "bouquet/bounds.h"
#include "bouquet/driver.h"
#include "ess/posp_generator.h"
#include "executor/batch.h"
#include "executor/builder.h"
#include "storage/paged_table.h"
#include "testing/exec_differential.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

int SweepIterations() {
  const char* env = std::getenv("BOUQUET_EXEC_DIFF_ITERS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 1000;
}

// ---------------------------------------------------------------------------
// Seeded differential sweep
// ---------------------------------------------------------------------------

TEST(ExecDifferential, SeededSweepHasZeroDivergences) {
  const int iters = SweepIterations();
  ExecDifferentialOptions opts;
  opts.max_rows_per_table = 96;
  opts.max_plans = 2;
  opts.budget_sweeps = 2;
  opts.batch_sizes = {1, 7, 1024};
  long long runs = 0;
  for (int i = 0; i < iters; ++i) {
    const uint64_t seed = 0xD1FFu + static_cast<uint64_t>(i);
    const FuzzInstance instance = GenerateFuzzInstance(seed);
    // Spill subtrees are the expensive part; sample them.
    opts.check_spill = i % 4 == 0;
    const ExecDiffResult r = CheckExecDifferential(instance, opts);
    ASSERT_TRUE(r.ok) << instance.Describe() << ": " << r.detail;
    runs += r.runs_compared;
  }
  std::printf("exec differential sweep: %d instances, %lld engine-pair "
              "runs, zero divergences\n", iters, runs);
}

// The same differential, but both engines execute over disk-backed paged
// storage: the harness imports every materialized table into .btbl files,
// resets the buffer pool before each run so both engines replay against an
// identical cold pool, and an accounting oracle inside the harness asserts
// that the charged page reads/hits of every (engine, budget, batch-size)
// run equal the buffer manager's miss/hit counters exactly. A tiny pool
// (4 pages) over multi-page tables keeps every run under heavy eviction
// pressure; both policies are exercised.
TEST(ExecDifferential, PagedSweepExactAccountingAndParity) {
  for (const storage::EvictionPolicyKind policy :
       {storage::EvictionPolicyKind::k2Q,
        storage::EvictionPolicyKind::kLru}) {
    const char* tag =
        policy == storage::EvictionPolicyKind::k2Q ? "2q" : "lru";
    ExecDifferentialOptions opts;
    opts.max_rows_per_table = 1500;  // tables span several pages
    opts.max_plans = 2;
    opts.budget_sweeps = 2;
    opts.batch_sizes = {1, 7, 1024};
    opts.paged_pool_pages = 4;
    opts.paged_policy = policy;
    long long runs = 0;
    for (int i = 0; i < 6; ++i) {
      const uint64_t seed = 0x9A6EDu + static_cast<uint64_t>(i);
      opts.paged_data_dir = ::testing::TempDir() + "/exec_diff_paged_" +
                            tag + "_" + std::to_string(i);
      // Spill-mode subtrees materialize through the same pool; sample them.
      opts.check_spill = i % 2 == 0;
      const FuzzInstance instance = GenerateFuzzInstance(seed);
      const ExecDiffResult r = CheckExecDifferential(instance, opts);
      ASSERT_TRUE(r.ok) << tag << " " << instance.Describe() << ": "
                        << r.detail;
      runs += r.runs_compared;
    }
    EXPECT_GT(runs, 0) << tag;
  }
}

TEST(ExecDifferential, DeterministicFromSeed) {
  const FuzzInstance instance = GenerateFuzzInstance(42);
  ExecDataset a = MaterializeInstance(instance, 128);
  ExecDataset b = MaterializeInstance(instance, 128);
  ASSERT_EQ(a.achieved, b.achieved);
  for (const std::string& t : a.query.tables) {
    ASSERT_EQ(a.db.table(t).num_rows(), b.db.table(t).num_rows());
    for (int c = 0; c < a.db.table(t).num_columns(); ++c) {
      ASSERT_EQ(a.db.table(t).column(c), b.db.table(t).column(c)) << t;
    }
  }
  const ExecDiffResult ra = CheckExecDifferential(instance);
  const ExecDiffResult rb = CheckExecDifferential(instance);
  EXPECT_EQ(ra.ok, rb.ok);
  EXPECT_EQ(ra.runs_compared, rb.runs_compared);
  EXPECT_EQ(ra.plans_checked, rb.plans_checked);
}

// ---------------------------------------------------------------------------
// Hand-built degenerate shapes
// ---------------------------------------------------------------------------

class DegenerateFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DataTable e("e", {"k", "v"});  // deliberately empty
    DataTable one("one", {"k", "v"});
    one.AppendRow({7, 70});
    DataTable r("r", {"k", "v"});
    for (int64_t i = 1; i <= 9; ++i) r.AppendRow({i % 4, i * 10});
    db_.AddTable(std::move(e));
    db_.AddTable(std::move(one));
    db_.AddTable(std::move(r));
    db_.SyncCatalog(&catalog_, 64.0);
    query_.name = "degenerate";
    query_.tables = {"e", "one", "r"};
    query_.joins = {JoinPredicate{"e", "k", "r", "k", -1.0},
                    JoinPredicate{"one", "k", "r", "k", -1.0}};
    query_.filters = {
        SelectionPredicate{"r", "v", CompareOp::kLess, -100, -1.0},  // none
        SelectionPredicate{"r", "v", CompareOp::kLess, 1000, -1.0}};  // all
    ASSERT_TRUE(query_.Validate(catalog_).ok());
    cm_ = std::make_unique<CostModel>(CostParams::Postgres());
  }

  ExecContext MakeContext(int batch_size) {
    ExecContext ctx;
    ctx.query = &query_;
    ctx.catalog = &catalog_;
    ctx.db = &db_;
    ctx.cost_model = cm_.get();
    ctx.batch_size = batch_size;
    return ctx;
  }

  PlanNodeRef Scan(int table, std::vector<int> filters = {}) {
    auto n = std::make_shared<PlanNode>();
    n->op = OpType::kSeqScan;
    n->table_idx = table;
    n->filter_idxs = std::move(filters);
    return n;
  }

  PlanNodeRef Join(OpType op, PlanNodeRef l, PlanNodeRef r, int join_idx) {
    auto n = std::make_shared<PlanNode>();
    n->op = op;
    n->left = std::move(l);
    n->right = std::move(r);
    n->join_idxs = {join_idx};
    return n;
  }

  // Runs the plan under both engines across a budget sweep and asserts
  // bit-identical outcomes at every batch size.
  void ExpectParity(const PlanNode& plan) {
    const double inf = std::numeric_limits<double>::infinity();
    ExecContext ref = MakeContext(1024);
    std::vector<Row> ref_rows;
    const ExecutionOutcome full = ExecutePlan(plan, &ref, inf, &ref_rows);
    std::vector<double> budgets = {inf, full.cost_charged * 0.5,
                                   full.cost_charged * 1e-9};
    for (const double budget : budgets) {
      ExecContext sctx = MakeContext(1024);
      std::vector<Row> srows;
      const ExecutionOutcome s = ExecutePlan(plan, &sctx, budget, &srows);
      for (const int bsz : {1, 2, 3, 1024}) {
        ExecContext bctx = MakeContext(bsz);
        std::vector<Row> brows;
        const ExecutionOutcome b = ExecutePlanBatch(plan, &bctx, budget,
                                                    &brows);
        ASSERT_EQ(b.status, s.status) << "budget " << budget;
        ASSERT_EQ(b.cost_charged, s.cost_charged)
            << "budget " << budget << " batch " << bsz;
        ASSERT_EQ(brows, srows);
      }
    }
  }

  Database db_;
  Catalog catalog_;
  QuerySpec query_;
  std::unique_ptr<CostModel> cm_;
};

TEST_F(DegenerateFixture, EmptyTableScan) { ExpectParity(*Scan(0)); }

TEST_F(DegenerateFixture, SingleRowScan) { ExpectParity(*Scan(1)); }

TEST_F(DegenerateFixture, AllFilteredScan) { ExpectParity(*Scan(2, {0})); }

TEST_F(DegenerateFixture, NothingFilteredScan) { ExpectParity(*Scan(2, {1})); }

TEST_F(DegenerateFixture, JoinsWithEmptySides) {
  for (OpType op : {OpType::kHashJoin, OpType::kMergeJoin,
                    OpType::kMaterialNLJoin}) {
    ExpectParity(*Join(op, Scan(0), Scan(2), 0));  // empty probe/left
    ExpectParity(*Join(op, Scan(2), Scan(0), 0));  // empty build/right
    ExpectParity(*Join(op, Scan(0), Scan(0), 0));  // both empty
  }
}

TEST_F(DegenerateFixture, JoinsWithSingleAndFilteredInputs) {
  for (OpType op : {OpType::kHashJoin, OpType::kMergeJoin,
                    OpType::kMaterialNLJoin}) {
    ExpectParity(*Join(op, Scan(1), Scan(2), 1));       // 1-row left
    ExpectParity(*Join(op, Scan(2, {0}), Scan(2), 0));  // all-filtered left
  }
}

// ---------------------------------------------------------------------------
// BouquetDriver step-sequence matrix (Table 3 machinery across engines)
// ---------------------------------------------------------------------------

class DriverMatrixFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchDataOptions opts;
    opts.mini_scale = 0.2;
    MakeTpchDatabase(&db_, opts);
    SyncTpchCatalog(db_, &catalog_);
    query_ = Make2DHQ8a(catalog_);
    achieved_ = BindSelectionConstants(&query_, catalog_, {0.337, 0.456});
    ASSERT_TRUE(query_.Validate(catalog_).ok());
    opt_ = std::make_unique<QueryOptimizer>(query_, catalog_,
                                            CostParams::Postgres());
    grid_ = std::make_unique<EssGrid>(query_, std::vector<int>{16, 16});
    diagram_ = std::make_unique<PlanDiagram>(
        GeneratePosp(query_, catalog_, CostParams::Postgres(), *grid_));
    bouquet_ = std::make_unique<PlanBouquet>(
        BuildBouquet(*diagram_, opt_.get()));
  }

  // Everything but wall_seconds must be byte-identical.
  static void ExpectStepsIdentical(const std::vector<DriverStep>& a,
                                   const std::vector<DriverStep>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].contour, b[i].contour) << "step " << i;
      EXPECT_EQ(a[i].plan_id, b[i].plan_id) << "step " << i;
      EXPECT_EQ(a[i].plan_signature, b[i].plan_signature) << "step " << i;
      EXPECT_EQ(a[i].budget, b[i].budget) << "step " << i;
      EXPECT_EQ(a[i].charged, b[i].charged) << "step " << i;  // bit-exact
      EXPECT_EQ(a[i].completed, b[i].completed) << "step " << i;
      EXPECT_EQ(a[i].spilled, b[i].spilled) << "step " << i;
      EXPECT_EQ(a[i].learned_dim, b[i].learned_dim) << "step " << i;
    }
  }

  DriverResult Run(ExecEngine engine, bool optimized) {
    BouquetDriver driver(*bouquet_, *diagram_, opt_.get(), &db_);
    driver.SetEngine(engine);
    return optimized ? driver.RunOptimized() : driver.RunBasic();
  }

  Database db_;
  Catalog catalog_;
  QuerySpec query_;
  std::vector<double> achieved_;
  std::unique_ptr<QueryOptimizer> opt_;
  std::unique_ptr<EssGrid> grid_;
  std::unique_ptr<PlanDiagram> diagram_;
  std::unique_ptr<PlanBouquet> bouquet_;
};

TEST_F(DriverMatrixFixture, BasicStepSequencesIdenticalAcrossEngines) {
  const DriverResult scalar = Run(ExecEngine::kScalar, /*optimized=*/false);
  const DriverResult batch = Run(ExecEngine::kBatch, /*optimized=*/false);
  EXPECT_EQ(batch.completed, scalar.completed);
  EXPECT_EQ(batch.total_cost_units, scalar.total_cost_units);  // bit-exact
  EXPECT_EQ(batch.num_executions, scalar.num_executions);
  EXPECT_EQ(batch.contours_crossed, scalar.contours_crossed);
  EXPECT_EQ(batch.final_plan, scalar.final_plan);
  EXPECT_EQ(batch.final_plan_signature, scalar.final_plan_signature);
  EXPECT_EQ(batch.rows, scalar.rows);
  ExpectStepsIdentical(scalar.steps, batch.steps);
}

TEST_F(DriverMatrixFixture, OptimizedStepSequencesIdenticalAcrossEngines) {
  const DriverResult scalar = Run(ExecEngine::kScalar, /*optimized=*/true);
  const DriverResult batch = Run(ExecEngine::kBatch, /*optimized=*/true);
  EXPECT_EQ(batch.completed, scalar.completed);
  EXPECT_EQ(batch.total_cost_units, scalar.total_cost_units);
  EXPECT_EQ(batch.num_executions, scalar.num_executions);
  EXPECT_EQ(batch.contours_crossed, scalar.contours_crossed);
  EXPECT_EQ(batch.final_plan_signature, scalar.final_plan_signature);
  EXPECT_EQ(batch.rows, scalar.rows);
  // The optimized algorithm's q_run learning feeds on per-node counters;
  // identical counters must produce identical discovered selectivities.
  EXPECT_EQ(batch.discovered_selectivities, scalar.discovered_selectivities);
  ExpectStepsIdentical(scalar.steps, batch.steps);
}

// ---------------------------------------------------------------------------
// BouquetDriver over disk-backed storage: the Table 3 machinery with real
// I/O charged on the hot path
// ---------------------------------------------------------------------------

class PagedDriverFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchDataOptions data_opts;
    data_opts.mini_scale = 0.2;
    MakeTpchDatabase(&mem_db_, data_opts);
    SyncTpchCatalog(mem_db_, &catalog_);
    query_ = Make2DHQ8a(catalog_);
    achieved_ = BindSelectionConstants(&query_, catalog_, {0.337, 0.456});
    ASSERT_TRUE(query_.Validate(catalog_).ok());
    opt_ = std::make_unique<QueryOptimizer>(query_, catalog_,
                                            CostParams::Postgres());
    grid_ = std::make_unique<EssGrid>(query_, std::vector<int>{16, 16});
    diagram_ = std::make_unique<PlanDiagram>(
        GeneratePosp(query_, catalog_, CostParams::Postgres(), *grid_));
    bouquet_ = std::make_unique<PlanBouquet>(
        BuildBouquet(*diagram_, opt_.get()));

    // Re-home the query's tables onto disk-backed pages behind a pool small
    // enough that the bouquet's repeated partial executions churn it.
    storage::StorageOptions sopts;
    sopts.data_dir = ::testing::TempDir() + "/paged_driver";
    sopts.pool_pages = 16;
    sopts.policy = storage::EvictionPolicyKind::k2Q;
    sm_ = std::make_unique<storage::StorageManager>(sopts);
    for (const std::string& t : query_.tables) {
      auto imported = sm_->ImportTable(mem_db_.table(t));
      ASSERT_TRUE(imported.ok()) << t << ": " << imported.status().ToString();
    }
    paged_db_.AttachStorage(sm_.get());
  }

  // Every driver run starts from an identical cold pool so scalar and batch
  // replay the same eviction history.
  DriverResult Run(ExecEngine engine, bool optimized) {
    sm_->buffer()->ResetForTest();
    BouquetDriver driver(*bouquet_, *diagram_, opt_.get(), &paged_db_);
    driver.SetEngine(engine);
    return optimized ? driver.RunOptimized() : driver.RunBasic();
  }

  DriverResult RunOracle() {
    sm_->buffer()->ResetForTest();
    const Plan plan = opt_->OptimizeAt(achieved_);
    BouquetDriver driver(*bouquet_, *diagram_, opt_.get(), &paged_db_);
    return driver.RunSinglePlan(*plan.root);
  }

  Database mem_db_;
  Database paged_db_;
  Catalog catalog_;
  QuerySpec query_;
  std::vector<double> achieved_;
  std::unique_ptr<QueryOptimizer> opt_;
  std::unique_ptr<EssGrid> grid_;
  std::unique_ptr<PlanDiagram> diagram_;
  std::unique_ptr<PlanBouquet> bouquet_;
  std::unique_ptr<storage::StorageManager> sm_;
};

TEST_F(PagedDriverFixture, StepSequencesIdenticalAcrossEnginesOnPages) {
  for (const bool optimized : {false, true}) {
    const DriverResult scalar = Run(ExecEngine::kScalar, optimized);
    const DriverResult batch = Run(ExecEngine::kBatch, optimized);
    EXPECT_EQ(batch.completed, scalar.completed) << optimized;
    EXPECT_EQ(batch.total_cost_units, scalar.total_cost_units);  // bit-exact
    EXPECT_EQ(batch.num_executions, scalar.num_executions);
    EXPECT_EQ(batch.final_plan_signature, scalar.final_plan_signature);
    EXPECT_EQ(batch.rows, scalar.rows);
    EXPECT_EQ(batch.page_reads, scalar.page_reads);
    EXPECT_EQ(batch.page_hits, scalar.page_hits);
    ASSERT_EQ(batch.steps.size(), scalar.steps.size());
    for (size_t i = 0; i < scalar.steps.size(); ++i) {
      EXPECT_EQ(batch.steps[i].plan_signature,
                scalar.steps[i].plan_signature) << "step " << i;
      EXPECT_EQ(batch.steps[i].budget, scalar.steps[i].budget) << i;
      EXPECT_EQ(batch.steps[i].charged, scalar.steps[i].charged) << i;
      EXPECT_EQ(batch.steps[i].completed, scalar.steps[i].completed) << i;
      EXPECT_EQ(batch.steps[i].spilled, scalar.steps[i].spilled) << i;
      EXPECT_EQ(batch.steps[i].page_reads, scalar.steps[i].page_reads) << i;
      EXPECT_EQ(batch.steps[i].page_hits, scalar.steps[i].page_hits) << i;
    }
  }
}

// Theorem 3's MSO discipline with I/O-charged costs: the paged bouquet run
// completes with the correct result, every aborted partial execution stops
// within a whisker of its budget, real page I/O is actually charged (both
// misses and buffer hits appear in the meter), and the end-to-end
// sub-optimality against the oracle plan stays inside the paper's
// 4*(1+lambda)*rho envelope.
TEST_F(PagedDriverFixture, MsoDisciplineHoldsWithChargedIo) {
  // Reference result from the in-memory database.
  BouquetDriver mem_driver(*bouquet_, *diagram_, opt_.get(), &mem_db_);
  const Plan oracle_plan = opt_->OptimizeAt(achieved_);
  const int64_t expected =
      static_cast<int64_t>(mem_driver.RunSinglePlan(*oracle_plan.root)
                               .rows.size());
  ASSERT_GT(expected, 0);

  const DriverResult bou = Run(ExecEngine::kScalar, /*optimized=*/false);
  EXPECT_TRUE(bou.completed);
  EXPECT_EQ(static_cast<int64_t>(bou.rows.size()), expected);

  // The meter charged real page fetches, and the pool was big enough to
  // convert at least some re-scans into priced buffer hits.
  EXPECT_GT(bou.page_reads, 0);
  EXPECT_GT(bou.page_hits, 0);

  // Budget compliance: cost-limited executions abort within a whisker.
  for (const DriverStep& step : bou.steps) {
    if (!step.completed && std::isfinite(step.budget)) {
      EXPECT_LE(step.charged, step.budget * 1.01 + 10.0);
    }
  }

  const DriverResult oracle = RunOracle();
  ASSERT_GT(oracle.total_cost_units, 0.0);
  EXPECT_GT(oracle.page_reads, 0);
  const double subopt = bou.total_cost_units / oracle.total_cost_units;
  EXPECT_GE(subopt, 1.0 - 1e-6);
  EXPECT_LT(subopt, 4.0 * 1.2 * bouquet_->rho() + 1.0);
  // The analytic Theorem 3 bound also caps the empirical ratio.
  EXPECT_LT(subopt, BouquetMsoBound(*bouquet_) * (1.0 + 1e-6));
}

}  // namespace
}  // namespace bouquet
// Tests for bouquet/serialize (persistence of compiled bouquets) and
// query/error_log (workload-history dimension identification).

#include <gtest/gtest.h>

#include <sstream>

#include "bouquet/serialize.h"
#include "bouquet/simulator.h"
#include "ess/posp_generator.h"
#include "query/error_log.h"
#include "workloads/spaces.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

class SerializeTest : public ::testing::Test {
 protected:
  SerializeTest()
      : tpch_(MakeTpchCatalog(1.0)),
        tpcds_(MakeTpcdsCatalog(100.0)),
        space_(GetSpace("3D_H_Q5", tpch_, tpcds_)),
        grid_(space_.query, {7, 7, 7}),
        diagram_(GeneratePosp(space_.query, tpch_, CostParams::Postgres(),
                              grid_)),
        opt_(space_.query, tpch_, CostParams::Postgres()),
        bouquet_(BuildBouquet(diagram_, &opt_)) {}

  Catalog tpch_, tpcds_;
  NamedSpace space_;
  EssGrid grid_;
  PlanDiagram diagram_;
  QueryOptimizer opt_;
  PlanBouquet bouquet_;
};

TEST_F(SerializeTest, RoundTripExact) {
  std::stringstream stream;
  ASSERT_TRUE(SaveBouquet(diagram_, bouquet_, stream).ok());
  auto loaded = LoadBouquet(space_.query, stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const PlanDiagram& d2 = *loaded->diagram;
  ASSERT_EQ(d2.num_plans(), diagram_.num_plans());
  for (int p = 0; p < diagram_.num_plans(); ++p) {
    EXPECT_EQ(d2.plan(p).signature, diagram_.plan(p).signature);
  }
  ASSERT_EQ(loaded->grid->num_points(), grid_.num_points());
  for (uint64_t i = 0; i < grid_.num_points(); ++i) {
    EXPECT_EQ(d2.plan_at(i), diagram_.plan_at(i));
    EXPECT_DOUBLE_EQ(d2.cost_at(i), diagram_.cost_at(i));  // hex exact
  }
  const PlanBouquet& b2 = *loaded->bouquet;
  EXPECT_DOUBLE_EQ(b2.params.ratio, bouquet_.params.ratio);
  EXPECT_DOUBLE_EQ(b2.params.lambda, bouquet_.params.lambda);
  ASSERT_EQ(b2.contours.size(), bouquet_.contours.size());
  for (size_t k = 0; k < b2.contours.size(); ++k) {
    EXPECT_DOUBLE_EQ(b2.contours[k].budget, bouquet_.contours[k].budget);
    EXPECT_EQ(b2.contours[k].points, bouquet_.contours[k].points);
    EXPECT_EQ(b2.contours[k].plan_at, bouquet_.contours[k].plan_at);
    EXPECT_EQ(b2.contours[k].plan_ids, bouquet_.contours[k].plan_ids);
  }
  EXPECT_EQ(b2.plan_ids, bouquet_.plan_ids);
}

TEST_F(SerializeTest, LoadedBouquetExecutesIdentically) {
  std::stringstream stream;
  ASSERT_TRUE(SaveBouquet(diagram_, bouquet_, stream).ok());
  auto loaded = LoadBouquet(space_.query, stream);
  ASSERT_TRUE(loaded.ok());

  BouquetSimulator original(bouquet_, diagram_, &opt_);
  QueryOptimizer opt2(space_.query, tpch_, CostParams::Postgres());
  BouquetSimulator restored(*loaded->bouquet, *loaded->diagram, &opt2);
  for (uint64_t qa = 0; qa < grid_.num_points(); qa += 11) {
    const SimResult a = original.RunBasic(qa);
    const SimResult b = restored.RunBasic(qa);
    EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost) << "qa=" << qa;
    EXPECT_EQ(a.num_executions, b.num_executions);
    EXPECT_EQ(a.final_plan, b.final_plan);
  }
}

TEST_F(SerializeTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/bouquet_test.bq";
  ASSERT_TRUE(SaveBouquetToFile(diagram_, bouquet_, path).ok());
  auto loaded = LoadBouquetFromFile(space_.query, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->diagram->num_plans(), diagram_.num_plans());
}

TEST_F(SerializeTest, RejectsGarbage) {
  std::stringstream stream("not a bouquet at all");
  auto loaded = LoadBouquet(space_.query, stream);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SerializeTest, RejectsDimMismatch) {
  std::stringstream stream;
  ASSERT_TRUE(SaveBouquet(diagram_, bouquet_, stream).ok());
  const QuerySpec eq = MakeEqQuery(tpch_);  // 1D query vs 3D bundle
  auto loaded = LoadBouquet(eq, stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SerializeTest, RejectsTruncatedStream) {
  std::stringstream stream;
  ASSERT_TRUE(SaveBouquet(diagram_, bouquet_, stream).ok());
  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  auto loaded = LoadBouquet(space_.query, truncated);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SerializeTest, MissingFileIsNotFound) {
  auto loaded = LoadBouquetFromFile(space_.query, "/nonexistent/file.bq");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Error log
// ---------------------------------------------------------------------------

TEST(ErrorLogTest, RecordsAndAggregates) {
  SelectivityErrorLog log;
  log.Record("part.p_retailprice <", 0.01, 0.3);
  log.Record("part.p_retailprice <", 0.2, 0.1);
  const auto& s = log.Stats("part.p_retailprice <");
  EXPECT_EQ(s.observations, 2);
  EXPECT_NEAR(s.max_error_factor, 30.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.min_actual, 0.1);
  EXPECT_DOUBLE_EQ(s.max_actual, 0.3);
}

TEST(ErrorLogTest, UnseenKeyIsClean) {
  SelectivityErrorLog log;
  EXPECT_EQ(log.Stats("nothing").observations, 0);
  EXPECT_TRUE(log.ErrorProneKeys(2.0).empty());
}

TEST(ErrorLogTest, JoinKeyOrientationFree) {
  JoinPredicate a{"part", "p_partkey", "lineitem", "l_partkey", -1.0};
  JoinPredicate b{"lineitem", "l_partkey", "part", "p_partkey", -1.0};
  EXPECT_EQ(SelectivityErrorLog::JoinKey(a), SelectivityErrorLog::JoinKey(b));
}

TEST(ErrorLogTest, ErrorProneKeysThreshold) {
  SelectivityErrorLog log;
  log.Record("accurate", 0.1, 0.11);
  log.Record("wild", 0.001, 0.5);
  const auto keys = log.ErrorProneKeys(10.0);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "wild");
}

TEST(ErrorLogTest, SuggestDimensionsForQuery) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const QuerySpec eq = MakeEqQuery(tpch);  // filter 0 = p_retailprice <
  SelectivityErrorLog log;
  // History: this filter's estimates have been off by up to 50x, with
  // actuals between 0.02 and 0.4.
  log.Record(SelectivityErrorLog::FilterKey(eq.filters[0]), 0.001, 0.05);
  log.Record(SelectivityErrorLog::FilterKey(eq.filters[0]), 0.01, 0.4);
  log.Record(SelectivityErrorLog::FilterKey(eq.filters[0]), 0.3, 0.02);
  // An accurate join: must not become a dimension.
  log.Record(SelectivityErrorLog::JoinKey(eq.joins[0]), 5e-6, 5.2e-6);

  const auto dims = log.SuggestDimensions(eq, /*factor_threshold=*/5.0,
                                          /*margin_decades=*/1.0);
  ASSERT_EQ(dims.size(), 1u);
  EXPECT_EQ(dims[0].kind, DimKind::kSelection);
  EXPECT_EQ(dims[0].predicate_index, 0);
  EXPECT_NEAR(dims[0].lo, 0.002, 1e-12);  // 0.02 / 10
  EXPECT_NEAR(dims[0].hi, 1.0, 1e-12);    // 0.4 * 10 clamped
  // The suggested dimensions produce a valid query.
  QuerySpec q = eq;
  q.error_dims = dims;
  EXPECT_TRUE(q.Validate(tpch).ok());
}

TEST(ErrorLogTest, SuggestEmptyWithoutHistory) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const QuerySpec eq = MakeEqQuery(tpch);
  SelectivityErrorLog log;
  EXPECT_TRUE(log.SuggestDimensions(eq, 2.0).empty());
}

}  // namespace
}  // namespace bouquet

// Tests for bouquet/bouquet: bouquet identification structure and the
// Lemma 1 / Theorem 1 behavior on the 1D example.

#include <gtest/gtest.h>

#include <set>

#include "bouquet/bouquet.h"
#include "bouquet/simulator.h"
#include "ess/posp_generator.h"
#include "workloads/spaces.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

class BouquetTest : public ::testing::Test {
 protected:
  BouquetTest()
      : catalog_(MakeTpchCatalog(1.0)),
        query_(MakeEqQuery(catalog_)),
        grid_(query_, {80}),
        diagram_(GeneratePosp(query_, catalog_, CostParams::Postgres(),
                              grid_)),
        opt_(query_, catalog_, CostParams::Postgres()),
        bouquet_(BuildBouquet(diagram_, &opt_)) {}

  Catalog catalog_;
  QuerySpec query_;
  EssGrid grid_;
  PlanDiagram diagram_;
  QueryOptimizer opt_;
  PlanBouquet bouquet_;
};

TEST_F(BouquetTest, StructureSane) {
  EXPECT_GE(bouquet_.contours.size(), 3u);
  EXPECT_GE(bouquet_.cardinality(), 2);
  EXPECT_EQ(bouquet_.rho(), 1);  // 1D: one plan per contour
  EXPECT_DOUBLE_EQ(bouquet_.cmin, diagram_.Cmin());
  EXPECT_DOUBLE_EQ(bouquet_.cmax, diagram_.Cmax());
}

TEST_F(BouquetTest, BudgetsInflatedByLambda) {
  for (const auto& c : bouquet_.contours) {
    EXPECT_NEAR(c.budget, c.step_cost * 1.2, c.budget * 1e-12);
  }
}

TEST_F(BouquetTest, BudgetsDoubling) {
  for (size_t k = 1; k < bouquet_.contours.size(); ++k) {
    EXPECT_NEAR(bouquet_.contours[k].step_cost /
                    bouquet_.contours[k - 1].step_cost,
                2.0, 1e-9);
  }
}

TEST_F(BouquetTest, ContourPlansWithinBudget) {
  // Every plan assigned to a contour point must cost <= budget there.
  for (const auto& c : bouquet_.contours) {
    for (size_t i = 0; i < c.points.size(); ++i) {
      const double cost = opt_.CostPlanAt(*diagram_.plan(c.plan_at[i]).root,
                                          grid_.SelectivityAt(c.points[i]));
      EXPECT_LE(cost, c.budget * (1 + 1e-9));
    }
  }
}

TEST_F(BouquetTest, UnionMatchesContourPlans) {
  std::set<int> seen;
  for (const auto& c : bouquet_.contours) {
    for (int p : c.plan_ids) seen.insert(p);
  }
  EXPECT_EQ(std::vector<int>(seen.begin(), seen.end()), bouquet_.plan_ids);
}

TEST_F(BouquetTest, NonAnorexicKeepsOptimalAssignment) {
  BouquetParams params;
  params.anorexic = false;
  const PlanBouquet raw = BuildBouquet(diagram_, &opt_, params);
  for (const auto& c : raw.contours) {
    EXPECT_DOUBLE_EQ(c.budget, c.step_cost);  // no inflation
    for (size_t i = 0; i < c.points.size(); ++i) {
      EXPECT_EQ(c.plan_at[i], diagram_.plan_at(c.points[i]));
    }
  }
  // Anorexic reduction can only shrink the bouquet.
  EXPECT_LE(bouquet_.cardinality(), raw.cardinality());
}

// Lemma 1 (1D): if q_a lies in (q_{k-1}, q_k], the plan of contour k
// completes it within budget, and no earlier contour's plan does.
TEST_F(BouquetTest, LemmaOneCompletionBand) {
  BouquetSimulator sim(bouquet_, diagram_, &opt_);
  for (uint64_t qa = 0; qa < grid_.num_points(); qa += 5) {
    const SimResult run = sim.RunBasic(qa);
    ASSERT_TRUE(run.completed);
    EXPECT_FALSE(run.fallback_used);
    // The completing contour's step cost must be >= PIC(qa) (it could not
    // have completed earlier by PCM) within the lambda slack.
    const double pic = diagram_.cost_at(qa);
    const auto& final_contour = bouquet_.contours[run.final_contour];
    EXPECT_GE(final_contour.budget * (1 + 1e-9), pic);
    if (run.final_contour > 0) {
      // Not completable at the previous contour with its budget: check the
      // final plan's own cost exceeds the previous budget OR the plan was
      // not on that contour.
      const auto& prev = bouquet_.contours[run.final_contour - 1];
      const bool was_on_prev =
          std::find(prev.plan_ids.begin(), prev.plan_ids.end(),
                    run.final_plan) != prev.plan_ids.end();
      if (was_on_prev) {
        EXPECT_GT(sim.EstimatedCost(run.final_plan, qa),
                  prev.budget * (1 - 1e-9));
      }
    }
  }
}

TEST_F(BouquetTest, RepeatabilityAcrossRuns) {
  // The hallmark property: identical execution sequences across invocations.
  BouquetSimulator sim(bouquet_, diagram_, &opt_);
  const uint64_t qa = grid_.num_points() / 2;
  const SimResult a = sim.RunBasic(qa);
  const SimResult b = sim.RunBasic(qa);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].plan_id, b.steps[i].plan_id);
    EXPECT_DOUBLE_EQ(a.steps[i].charged, b.steps[i].charged);
  }
  // And across a fresh pipeline rebuild.
  const PlanDiagram d2 =
      GeneratePosp(query_, catalog_, CostParams::Postgres(), grid_);
  QueryOptimizer opt2(query_, catalog_, CostParams::Postgres());
  const PlanBouquet b2 = BuildBouquet(d2, &opt2);
  BouquetSimulator sim2(b2, d2, &opt2);
  const SimResult c = sim2.RunBasic(qa);
  ASSERT_EQ(a.steps.size(), c.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.steps[i].charged, c.steps[i].charged);
  }
}

TEST_F(BouquetTest, PaperWalkthroughShape) {
  // The 1D EQ walkthrough (Section 1): execution at ~5% proceeds through
  // several contours with the same plan continuing, then switches, and the
  // final sub-optimality lands well under the Theorem 1 bound of 4(1+l).
  BouquetSimulator sim(bouquet_, diagram_, &opt_);
  const uint64_t qa = grid_.LinearIndex({grid_.AxisFloor(0, 0.05)});
  const SimResult run = sim.RunBasic(qa);
  ASSERT_TRUE(run.completed);
  EXPECT_GE(run.num_executions, 3);
  const double subopt = sim.SubOpt(run, qa);
  EXPECT_LT(subopt, 4.0 * 1.2);
  EXPECT_GE(subopt, 1.0);
}

}  // namespace
}  // namespace bouquet

// Operator-level executor tests using hand-built plan trees over a tiny
// controlled dataset: each physical operator is exercised directly and
// compared against hand-computed results (duplicates, residual predicates,
// empty inputs, budget behavior).

#include <gtest/gtest.h>

#include "executor/batch.h"
#include "executor/builder.h"
#include "optimizer/optimizer.h"

namespace bouquet {
namespace {

// Schema: r(k, v), s(k, w). Data engineered for duplicate join keys.
class OpsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DataTable r("r", {"k", "v"});
    r.AppendRow({1, 10});
    r.AppendRow({2, 20});
    r.AppendRow({2, 21});
    r.AppendRow({3, 30});
    r.AppendRow({5, 50});
    DataTable s("s", {"k", "w"});
    s.AppendRow({2, 200});
    s.AppendRow({2, 201});
    s.AppendRow({3, 300});
    s.AppendRow({4, 400});
    db_.AddTable(std::move(r));
    db_.AddTable(std::move(s));
    db_.SyncCatalog(&catalog_, 64.0);

    query_.name = "ops";
    query_.tables = {"r", "s"};
    query_.joins = {JoinPredicate{"r", "k", "s", "k", -1.0}};
    query_.filters = {
        SelectionPredicate{"r", "v", CompareOp::kLess, 1000, -1.0},
        SelectionPredicate{"s", "w", CompareOp::kGreaterEqual, 201, -1.0}};
    ASSERT_TRUE(query_.Validate(catalog_).ok());
    cm_ = std::make_unique<CostModel>(CostParams::Postgres());
  }

  ExecContext MakeContext() {
    ExecContext ctx;
    ctx.query = &query_;
    ctx.catalog = &catalog_;
    ctx.db = &db_;
    ctx.cost_model = cm_.get();
    return ctx;
  }

  PlanNodeRef Scan(OpType op, int table, std::vector<int> filters = {},
                   int index_filter = -1) {
    auto n = std::make_shared<PlanNode>();
    n->op = op;
    n->table_idx = table;
    n->filter_idxs = std::move(filters);
    n->index_filter = index_filter;
    return n;
  }

  PlanNodeRef Join(OpType op, PlanNodeRef l, PlanNodeRef r,
                   std::vector<int> joins, int index_join = -1) {
    auto n = std::make_shared<PlanNode>();
    n->op = op;
    n->left = std::move(l);
    n->right = std::move(r);
    n->join_idxs = std::move(joins);
    n->index_join = index_join;
    return n;
  }

  int64_t Run(const PlanNode& root, std::vector<Row>* rows = nullptr) {
    ExecContext ctx = MakeContext();
    const ExecutionOutcome out = ExecutePlan(
        root, &ctx, std::numeric_limits<double>::infinity(), rows);
    EXPECT_EQ(out.status, ExecResult::kDone);
    return out.rows_emitted;
  }

  Database db_;
  Catalog catalog_;
  QuerySpec query_;
  std::unique_ptr<CostModel> cm_;
};

// Join of r and s on k without filters: keys 2 (2x2) and 3 (1x1) -> 5 rows.
constexpr int64_t kJoinNoFilters = 5;

TEST_F(OpsFixture, SeqScanAll) {
  const auto plan = Scan(OpType::kSeqScan, 0);
  std::vector<Row> rows;
  EXPECT_EQ(Run(*plan, &rows), 5);
  EXPECT_EQ(rows[0].size(), 2u);  // k, v
}

TEST_F(OpsFixture, SeqScanWithFilter) {
  // v < 1000 keeps everything; narrow it.
  query_.filters[0].constant = 21;
  const auto plan = Scan(OpType::kSeqScan, 0, {0});
  EXPECT_EQ(Run(*plan), 2);  // v in {10, 20}
}

TEST_F(OpsFixture, IndexScanRange) {
  query_.filters[0].constant = 30;  // v < 30
  const auto plan = Scan(OpType::kIndexScan, 0, {0}, 0);
  std::vector<Row> rows;
  EXPECT_EQ(Run(*plan, &rows), 3);  // 10, 20, 21
}

TEST_F(OpsFixture, IndexScanGreaterEqual) {
  const auto plan = Scan(OpType::kIndexScan, 1, {1}, 1);
  EXPECT_EQ(Run(*plan), 3);  // w >= 201: 201, 300, 400
}

TEST_F(OpsFixture, HashJoinDuplicates) {
  const auto plan = Join(OpType::kHashJoin, Scan(OpType::kSeqScan, 0),
                         Scan(OpType::kSeqScan, 1), {0});
  std::vector<Row> rows;
  EXPECT_EQ(Run(*plan, &rows), kJoinNoFilters);
  EXPECT_EQ(rows[0].size(), 4u);  // r.k, r.v, s.k, s.w
  for (const Row& row : rows) EXPECT_EQ(row[0], row[2]);  // key equality
}

TEST_F(OpsFixture, MergeJoinDuplicates) {
  const auto plan = Join(OpType::kMergeJoin, Scan(OpType::kSeqScan, 0),
                         Scan(OpType::kSeqScan, 1), {0});
  std::vector<Row> rows;
  EXPECT_EQ(Run(*plan, &rows), kJoinNoFilters);
  for (const Row& row : rows) EXPECT_EQ(row[0], row[2]);
}

TEST_F(OpsFixture, MaterialNLJoin) {
  const auto plan = Join(OpType::kMaterialNLJoin, Scan(OpType::kSeqScan, 0),
                         Scan(OpType::kSeqScan, 1), {0});
  EXPECT_EQ(Run(*plan), kJoinNoFilters);
}

TEST_F(OpsFixture, IndexNLJoin) {
  const auto plan = Join(OpType::kIndexNLJoin, Scan(OpType::kSeqScan, 0),
                         Scan(OpType::kIndexScan, 1), {0}, /*index_join=*/0);
  std::vector<Row> rows;
  EXPECT_EQ(Run(*plan, &rows), kJoinNoFilters);
  for (const Row& row : rows) EXPECT_EQ(row[0], row[2]);
}

TEST_F(OpsFixture, AllJoinMethodsAgreeWithFilters) {
  query_.filters[0].constant = 50;  // r.v < 50 -> drops (5,50)... keeps all but v=50
  const std::vector<int> rf = {0};
  const std::vector<int> sf = {1};
  int64_t expected = -1;
  for (OpType op : {OpType::kHashJoin, OpType::kMergeJoin,
                    OpType::kMaterialNLJoin}) {
    const auto plan = Join(op, Scan(OpType::kSeqScan, 0, rf),
                           Scan(OpType::kSeqScan, 1, sf), {0});
    const int64_t got = Run(*plan);
    if (expected < 0) expected = got;
    EXPECT_EQ(got, expected) << OpTypeName(op);
  }
  // Index NL with inner filters as lookup residuals.
  const auto nl = Join(OpType::kIndexNLJoin, Scan(OpType::kSeqScan, 0, rf),
                       Scan(OpType::kIndexScan, 1, sf), {0}, 0);
  EXPECT_EQ(Run(*nl), expected);
}

TEST_F(OpsFixture, EmptyProbeSide) {
  query_.filters[0].constant = -100;  // nothing passes
  const auto plan = Join(OpType::kHashJoin, Scan(OpType::kSeqScan, 0, {0}),
                         Scan(OpType::kSeqScan, 1), {0});
  EXPECT_EQ(Run(*plan), 0);
}

TEST_F(OpsFixture, EmptyBuildSide) {
  query_.filters[1].constant = 100000;  // w >= 100000: nothing
  const auto plan = Join(OpType::kHashJoin, Scan(OpType::kSeqScan, 0),
                         Scan(OpType::kSeqScan, 1, {1}), {0});
  EXPECT_EQ(Run(*plan), 0);
}

TEST_F(OpsFixture, TinyBudgetAbortsAllOperators) {
  for (OpType op : {OpType::kHashJoin, OpType::kMergeJoin,
                    OpType::kMaterialNLJoin}) {
    const auto plan = Join(op, Scan(OpType::kSeqScan, 0),
                           Scan(OpType::kSeqScan, 1), {0});
    ExecContext ctx = MakeContext();
    const ExecutionOutcome out = ExecutePlan(*plan, &ctx, 1e-6, nullptr);
    EXPECT_EQ(out.status, ExecResult::kAborted) << OpTypeName(op);
  }
}

TEST_F(OpsFixture, PresortedMergeJoinCorrectAndCheaper) {
  // Index scans on k emit sorted streams; a presorted merge join must
  // return the same rows while charging less than the sorting variant.
  // Build: MJ over two index scans on k (qual: k < 100 => full, sorted).
  query_.filters = {SelectionPredicate{"r", "k", CompareOp::kLess, 100, -1.0},
                    SelectionPredicate{"s", "k", CompareOp::kLess, 100, -1.0}};
  ASSERT_TRUE(query_.Validate(catalog_).ok());
  auto mj = Join(OpType::kMergeJoin, Scan(OpType::kIndexScan, 0, {0}, 0),
                 Scan(OpType::kIndexScan, 1, {1}, 1), {0});
  std::vector<Row> rows_sorting;
  ExecContext ctx1 = MakeContext();
  const ExecutionOutcome sorting = ExecutePlan(
      *mj, &ctx1, std::numeric_limits<double>::infinity(), &rows_sorting);
  ASSERT_EQ(sorting.status, ExecResult::kDone);

  auto mj_fast = std::make_shared<PlanNode>(*mj);
  mj_fast->left_presorted = true;
  mj_fast->right_presorted = true;
  std::vector<Row> rows_presorted;
  ExecContext ctx2 = MakeContext();
  const ExecutionOutcome presorted =
      ExecutePlan(*mj_fast, &ctx2, std::numeric_limits<double>::infinity(),
                  &rows_presorted);
  ASSERT_EQ(presorted.status, ExecResult::kDone);
  EXPECT_EQ(rows_presorted.size(), rows_sorting.size());
  EXPECT_EQ(presorted.rows_emitted, kJoinNoFilters);
  EXPECT_LT(presorted.cost_charged, sorting.cost_charged);
}

TEST_F(OpsFixture, InstrumentationMarksCompletion) {
  const auto plan = Join(OpType::kHashJoin, Scan(OpType::kSeqScan, 0),
                         Scan(OpType::kSeqScan, 1), {0});
  ExecContext ctx = MakeContext();
  ExecutePlan(*plan, &ctx, std::numeric_limits<double>::infinity(), nullptr);
  const NodeCounters* root_nc = ctx.instr.Find(plan.get());
  ASSERT_NE(root_nc, nullptr);
  EXPECT_TRUE(root_nc->finished);
  EXPECT_EQ(root_nc->tuples_out, kJoinNoFilters);
  const NodeCounters* scan_nc = ctx.instr.Find(plan->left.get());
  ASSERT_NE(scan_nc, nullptr);
  EXPECT_EQ(scan_nc->tuples_scanned, 5);
}

TEST_F(OpsFixture, AbortPreservesPartialCounters) {
  const auto plan = Scan(OpType::kSeqScan, 0);
  ExecContext ctx = MakeContext();
  // Budget for roughly two rows' charges.
  const ExecutionOutcome out = ExecutePlan(*plan, &ctx, 0.025, nullptr);
  EXPECT_EQ(out.status, ExecResult::kAborted);
  const NodeCounters* nc = ctx.instr.Find(plan.get());
  ASSERT_NE(nc, nullptr);
  EXPECT_GT(nc->tuples_scanned, 0);
  EXPECT_LT(nc->tuples_scanned, 5);
  EXPECT_FALSE(nc->finished);
}

// ---------------------------------------------------------------------------
// Batch-vs-scalar parity on the fixture plans
// ---------------------------------------------------------------------------

TEST_F(OpsFixture, BatchEngineMatchesScalarOnEveryJoinMethod) {
  query_.filters[0].constant = 50;
  const std::vector<int> rf = {0};
  const std::vector<int> sf = {1};
  std::vector<PlanNodeRef> plans;
  for (OpType op : {OpType::kHashJoin, OpType::kMergeJoin,
                    OpType::kMaterialNLJoin}) {
    plans.push_back(Join(op, Scan(OpType::kSeqScan, 0, rf),
                         Scan(OpType::kSeqScan, 1, sf), {0}));
  }
  plans.push_back(Join(OpType::kIndexNLJoin, Scan(OpType::kSeqScan, 0, rf),
                       Scan(OpType::kIndexScan, 1, sf), {0}, 0));
  for (const auto& plan : plans) {
    ExecContext sctx = MakeContext();
    std::vector<Row> srows;
    const ExecutionOutcome s = ExecutePlan(
        *plan, &sctx, std::numeric_limits<double>::infinity(), &srows);
    for (const int bsz : {1, 3, 1024}) {
      ExecContext bctx = MakeContext();
      bctx.batch_size = bsz;
      std::vector<Row> brows;
      const ExecutionOutcome b = ExecutePlanBatch(
          *plan, &bctx, std::numeric_limits<double>::infinity(), &brows);
      EXPECT_EQ(b.status, s.status);
      EXPECT_EQ(b.rows_emitted, s.rows_emitted);
      // Bit-exact: the batch engine replays the identical charge sequence.
      EXPECT_EQ(b.cost_charged, s.cost_charged) << "batch_size " << bsz;
      EXPECT_EQ(brows, srows);
    }
  }
}

// Satellite regression: both engines report identical per-node counters —
// the feed for q_run selectivity discovery — including scan counts and
// completion flags (batch engines account via bulk AddOut/AddScanned).
TEST_F(OpsFixture, BatchAndScalarNodeCountersIdentical) {
  const auto plan = Join(OpType::kHashJoin, Scan(OpType::kSeqScan, 0),
                         Scan(OpType::kSeqScan, 1, {1}), {0});
  ExecContext sctx = MakeContext();
  ExecutePlan(*plan, &sctx, std::numeric_limits<double>::infinity(), nullptr);
  ExecContext bctx = MakeContext();
  bctx.batch_size = 2;  // forces multi-batch probing
  ExecutePlanBatch(*plan, &bctx, std::numeric_limits<double>::infinity(),
                   nullptr);
  for (const PlanNode* node : CollectNodes(*plan)) {
    const NodeCounters* snc = sctx.instr.Find(node);
    const NodeCounters* bnc = bctx.instr.Find(node);
    ASSERT_NE(snc, nullptr);
    ASSERT_NE(bnc, nullptr);
    EXPECT_EQ(bnc->tuples_out, snc->tuples_out);
    EXPECT_EQ(bnc->tuples_scanned, snc->tuples_scanned);
    EXPECT_EQ(bnc->finished, snc->finished);
  }
}

TEST_F(OpsFixture, BatchAndScalarAbortAtSameTuple) {
  const auto plan = Join(OpType::kHashJoin, Scan(OpType::kSeqScan, 0),
                         Scan(OpType::kSeqScan, 1), {0});
  // Sweep budgets through the whole charge range; every abort point must
  // match bit-exactly (status, charged, and partial counters).
  ExecContext full = MakeContext();
  const ExecutionOutcome ref = ExecutePlan(
      *plan, &full, std::numeric_limits<double>::infinity(), nullptr);
  for (int i = 1; i <= 20; ++i) {
    const double budget = ref.cost_charged * i / 21.0;
    ExecContext sctx = MakeContext();
    const ExecutionOutcome s = ExecutePlan(*plan, &sctx, budget, nullptr);
    ExecContext bctx = MakeContext();
    bctx.batch_size = 3;
    const ExecutionOutcome b = ExecutePlanBatch(*plan, &bctx, budget, nullptr);
    EXPECT_EQ(b.status, s.status) << "budget " << budget;
    EXPECT_EQ(b.cost_charged, s.cost_charged) << "budget " << budget;
    for (const PlanNode* node : CollectNodes(*plan)) {
      const NodeCounters* snc = sctx.instr.Find(node);
      const NodeCounters* bnc = bctx.instr.Find(node);
      ASSERT_EQ(snc == nullptr, bnc == nullptr);
      if (snc == nullptr) continue;
      EXPECT_EQ(bnc->tuples_out, snc->tuples_out);
      EXPECT_EQ(bnc->tuples_scanned, snc->tuples_scanned);
    }
  }
}

// ---------------------------------------------------------------------------
// kAborted resumption semantics: re-pulling an aborted tree is a checked
// no-op in both engines — no new charges, no counter movement.
// ---------------------------------------------------------------------------

TEST_F(OpsFixture, ScalarRepullAfterAbortIsCheckedNoOp) {
  const auto plan = Join(OpType::kHashJoin, Scan(OpType::kSeqScan, 0),
                         Scan(OpType::kSeqScan, 1), {0});
  ExecContext ctx = MakeContext();
  ctx.meter.Reset();
  ctx.meter.set_budget(0.05);
  auto built = BuildExecutor(*plan, &ctx);
  ASSERT_TRUE(built.ok());
  Row row;
  ExecResult st = ExecResult::kRow;
  while (st == ExecResult::kRow) st = (*built)->Next(&row);
  ASSERT_EQ(st, ExecResult::kAborted);
  const double charged = ctx.meter.charged();
  const NodeCounters* nc = ctx.instr.Find(plan.get());
  const int64_t out_before = nc != nullptr ? nc->tuples_out : 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*built)->Next(&row), ExecResult::kAborted);
    EXPECT_EQ(ctx.meter.charged(), charged);  // bit-exact: nothing charged
    nc = ctx.instr.Find(plan.get());
    EXPECT_EQ(nc != nullptr ? nc->tuples_out : 0, out_before);
  }
}

TEST_F(OpsFixture, BatchRepullAfterAbortIsCheckedNoOp) {
  // Eager-phase abort (hash build trips the meter inside NextBatch) and
  // replay abort (scan events trip it in the caller's Replay) both leave
  // the tree poisoned: every further pull is kAborted with zero charges.
  const auto join = Join(OpType::kHashJoin, Scan(OpType::kSeqScan, 0),
                         Scan(OpType::kSeqScan, 1), {0});
  {
    ExecContext ctx = MakeContext();
    ctx.meter.Reset();
    ctx.meter.set_budget(1e-6);
    BatchExecState state(&ctx);
    auto built = BuildBatchExecutor(*join, &state);
    ASSERT_TRUE(built.ok());
    ColumnBatch batch;
    batch.Configure((*built)->schema().size());
    batch.Reset();
    ASSERT_EQ((*built)->NextBatch(&batch), ExecResult::kAborted);
    const double charged = ctx.meter.charged();
    for (int i = 0; i < 3; ++i) {
      batch.Reset();
      EXPECT_EQ((*built)->NextBatch(&batch), ExecResult::kAborted);
      EXPECT_EQ(batch.n, 0u);
      EXPECT_TRUE(batch.tape.empty());
      EXPECT_EQ(ctx.meter.charged(), charged);
    }
  }
  {
    const auto scan = Scan(OpType::kSeqScan, 0);
    ExecContext ctx = MakeContext();
    ctx.meter.Reset();
    ctx.meter.set_budget(0.025);
    BatchExecState state(&ctx);
    auto built = BuildBatchExecutor(*scan, &state);
    ASSERT_TRUE(built.ok());
    ColumnBatch batch;
    batch.Configure((*built)->schema().size());
    batch.Reset();
    const ExecResult st = (*built)->NextBatch(&batch);
    ASSERT_NE(st, ExecResult::kAborted);  // data plane never trips the meter
    ASSERT_FALSE(state.Replay(batch.tape.events()));  // ...the replay does
    const double charged = ctx.meter.charged();
    for (int i = 0; i < 3; ++i) {
      batch.Reset();
      EXPECT_EQ((*built)->NextBatch(&batch), ExecResult::kAborted);
      EXPECT_EQ(batch.n, 0u);
      EXPECT_EQ(ctx.meter.charged(), charged);
    }
  }
}

}  // namespace
}  // namespace bouquet

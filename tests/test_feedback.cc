// Tests for src/feedback: the cross-query selectivity feedback store —
// aggregation, crash-safe log recovery (truncated/garbage tails), and
// concurrent access — plus the warm-start / box-shrink policy helpers and
// warm execution equivalence on real data (byte-identical results).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bouquet/driver.h"
#include "bouquet/simulator.h"
#include "ess/posp_generator.h"
#include "feedback/feedback_store.h"
#include "feedback/warm_start.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

// Result rows echo join columns in plan-dependent order (the executor emits
// the executing plan's schema), so cross-plan result equality is multiset
// equality over per-row value multisets.
std::vector<Row> CanonicalRows(std::vector<Row> rows) {
  for (Row& row : rows) std::sort(row.begin(), row.end());
  std::sort(rows.begin(), rows.end());
  return rows;
}

FeedbackObservation Obs(uint64_t hash, std::vector<double> sels,
                        int final_contour) {
  FeedbackObservation o;
  o.template_hash = hash;
  o.selectivities = std::move(sels);
  o.final_contour = final_contour;
  return o;
}

TEST(FeedbackStoreTest, AggregatesSupportAndContours) {
  FeedbackStore store;
  ASSERT_TRUE(store.Record(Obs(7, {0.1, 0.5}, 2)).ok());
  ASSERT_TRUE(store.Record(Obs(7, {0.02, 0.9}, 4)).ok());
  ASSERT_TRUE(store.Record(Obs(7, {0.3, 0.7}, -1)).ok());

  TemplateFeedback fb;
  ASSERT_TRUE(store.Lookup(7, &fb));
  EXPECT_EQ(fb.observations, 3u);
  EXPECT_EQ(fb.max_final_contour, 4);
  ASSERT_EQ(fb.support.size(), 2u);
  EXPECT_DOUBLE_EQ(fb.support[0].lo, 0.02);
  EXPECT_DOUBLE_EQ(fb.support[0].hi, 0.3);
  EXPECT_DOUBLE_EQ(fb.support[1].lo, 0.5);
  EXPECT_DOUBLE_EQ(fb.support[1].hi, 0.9);

  EXPECT_FALSE(store.Lookup(8, &fb));
  const FeedbackStoreStats s = store.stats();
  EXPECT_EQ(s.records, 3u);
  EXPECT_EQ(s.templates, 1u);
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.lookup_hits, 1u);
  EXPECT_FALSE(store.file_backed());
}

TEST(FeedbackStoreTest, RejectsUnusableObservations) {
  FeedbackStore store;
  EXPECT_FALSE(store.Record(Obs(1, {}, 0)).ok());
  EXPECT_FALSE(store.Record(Obs(1, {0.5, NAN}, 0)).ok());
  EXPECT_FALSE(store.Record(Obs(1, {0.5, -0.1}, 0)).ok());
  TemplateFeedback fb;
  EXPECT_FALSE(store.Lookup(1, &fb));
}

TEST(FeedbackStoreTest, PersistsAcrossReopen) {
  const std::string path = TempPath("feedback_reopen.log");
  std::remove(path.c_str());
  {
    auto opened = FeedbackStore::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto& store = *opened.value();
    EXPECT_TRUE(store.file_backed());
    ASSERT_TRUE(store.Record(Obs(1, {0.1, 0.2}, 1)).ok());
    ASSERT_TRUE(store.Record(Obs(1, {0.4, 0.05}, 3)).ok());
    ASSERT_TRUE(store.Record(Obs(2, {0.9}, 0)).ok());
  }  // destructor compacts + closes
  auto reopened = FeedbackStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& store = *reopened.value();
  TemplateFeedback fb;
  ASSERT_TRUE(store.Lookup(1, &fb));
  EXPECT_EQ(fb.observations, 2u);
  EXPECT_EQ(fb.max_final_contour, 3);
  ASSERT_EQ(fb.support.size(), 2u);
  EXPECT_DOUBLE_EQ(fb.support[0].lo, 0.1);
  EXPECT_DOUBLE_EQ(fb.support[0].hi, 0.4);
  EXPECT_DOUBLE_EQ(fb.support[1].lo, 0.05);
  EXPECT_DOUBLE_EQ(fb.support[1].hi, 0.2);
  ASSERT_TRUE(store.Lookup(2, &fb));
  EXPECT_EQ(fb.observations, 1u);
  const FeedbackStoreStats s = store.stats();
  EXPECT_EQ(s.templates, 2u);
  EXPECT_GE(s.recovered_records, 2u);
  EXPECT_EQ(s.dropped_records, 0u);
  std::remove(path.c_str());
}

TEST(FeedbackStoreTest, RecoversBeforeTruncatedTail) {
  const std::string path = TempPath("feedback_torn.log");
  std::remove(path.c_str());
  {
    auto opened = FeedbackStore::Open(path);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened.value()->Record(Obs(1, {0.25}, 2)).ok());
  }
  {
    // Simulate a crash mid-append: a torn final line with no newline.
    std::ofstream f(path, std::ios::app | std::ios::binary);
    f << "obs 000000000000002a 1 1 0x1p-";
  }
  auto reopened = FeedbackStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& store = *reopened.value();
  TemplateFeedback fb;
  ASSERT_TRUE(store.Lookup(1, &fb));
  EXPECT_EQ(fb.observations, 1u);
  EXPECT_FALSE(store.Lookup(0x2a, &fb));  // the torn record is gone
  const FeedbackStoreStats s = store.stats();
  EXPECT_GE(s.dropped_records, 1u);
  EXPECT_GE(s.compactions, 1u);  // corrupt tail purged on open

  // The compaction rewrote a clean log: a third open drops nothing.
  reopened.value().reset();
  auto clean = FeedbackStore::Open(path);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value()->stats().dropped_records, 0u);
  ASSERT_TRUE(clean.value()->Lookup(1, &fb));
  EXPECT_EQ(fb.observations, 1u);
  std::remove(path.c_str());
}

TEST(FeedbackStoreTest, ChecksumMismatchDropsTail) {
  const std::string path = TempPath("feedback_garbage.log");
  std::remove(path.c_str());
  {
    auto opened = FeedbackStore::Open(path);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened.value()->Record(Obs(1, {0.5}, 1)).ok());
    ASSERT_TRUE(opened.value()->Record(Obs(2, {0.125}, 0)).ok());
  }
  // Flip one byte inside the final record's checksum.
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(f),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(bytes.empty());
  ASSERT_EQ(bytes.back(), '\n');
  const size_t target = bytes.size() - 2;  // last checksum hex digit
  bytes[target] = bytes[target] == '0' ? '1' : '0';
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto reopened = FeedbackStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& store = *reopened.value();
  const FeedbackStoreStats s = store.stats();
  EXPECT_GE(s.dropped_records, 1u);
  // Everything before the corrupt line survives.
  TemplateFeedback fb;
  EXPECT_TRUE(store.Lookup(1, &fb) || store.Lookup(2, &fb));
  std::remove(path.c_str());
}

TEST(FeedbackStoreTest, ConcurrentRecordLookupCompact) {
  const std::string path = TempPath("feedback_concurrent.log");
  std::remove(path.c_str());
  auto opened = FeedbackStore::Open(path);
  ASSERT_TRUE(opened.ok());
  FeedbackStore& store = *opened.value();

  constexpr int kWriters = 3;
  constexpr int kPerWriter = 64;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&store, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const uint64_t hash = static_cast<uint64_t>(i % 8);
        const double sel = 0.01 * (w + 1) + 0.001 * i;
        EXPECT_TRUE(store.Record(Obs(hash, {sel, sel / 2}, i % 4)).ok());
      }
    });
  }
  threads.emplace_back([&store] {
    TemplateFeedback fb;
    for (int i = 0; i < 200; ++i) {
      store.Lookup(static_cast<uint64_t>(i % 8), &fb);
    }
  });
  threads.emplace_back([&store] {
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(store.Compact().ok());
  });
  for (auto& t : threads) t.join();

  uint64_t total = 0;
  for (uint64_t h = 0; h < 8; ++h) {
    TemplateFeedback fb;
    ASSERT_TRUE(store.Lookup(h, &fb));
    total += fb.observations;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kWriters) * kPerWriter);
  std::remove(path.c_str());
}

TEST(WarmStartTest, SeedRequiresUsableFeedback) {
  WarmStartPolicy policy;
  policy.min_observations = 3;
  TemplateFeedback fb;
  DimVector seed;
  fb.observations = 2;
  fb.max_final_contour = 1;
  fb.support = {{0.1, 0.2}};
  EXPECT_FALSE(WarmStartSeed(fb, policy, &seed));  // too few observations
  fb.observations = 3;
  fb.max_final_contour = -1;
  EXPECT_FALSE(WarmStartSeed(fb, policy, &seed));  // nothing completed
  fb.max_final_contour = 1;
  fb.support.clear();
  EXPECT_FALSE(WarmStartSeed(fb, policy, &seed));  // no support
  fb.support = {{0.0, 0.2}};
  EXPECT_FALSE(WarmStartSeed(fb, policy, &seed));  // non-positive lo
  fb.support = {{0.1, 0.2}, {0.05, 0.6}};
  ASSERT_TRUE(WarmStartSeed(fb, policy, &seed));
  ASSERT_EQ(seed.size(), 2u);
  EXPECT_DOUBLE_EQ(seed[0], 0.1);   // per-dim observed minimum
  EXPECT_DOUBLE_EQ(seed[1], 0.05);
}

TEST(WarmStartTest, ContourClampsAndBacksOff) {
  PlanBouquet bouquet;
  for (const double step : {10.0, 20.0, 40.0, 80.0}) {
    BouquetContour c;
    c.step_cost = step;
    c.budget = step;
    bouquet.contours.push_back(std::move(c));
  }
  EXPECT_EQ(WarmStartContour(bouquet, 25.0, 0), 2);
  EXPECT_EQ(WarmStartContour(bouquet, 25.0, 1), 1);
  EXPECT_EQ(WarmStartContour(bouquet, 25.0, 5), 0);   // margin clamps at 0
  EXPECT_EQ(WarmStartContour(bouquet, 5.0, 0), 0);
  EXPECT_EQ(WarmStartContour(bouquet, 20.0, 0), 1);   // boundary inclusive
  EXPECT_EQ(WarmStartContour(bouquet, 1000.0, 0), 3);  // beyond Cmax: last
  EXPECT_EQ(WarmStartContour(bouquet, 1000.0, 1), 2);
  EXPECT_EQ(WarmStartContour(bouquet, NAN, 0), 0);
  EXPECT_EQ(WarmStartContour(bouquet, -3.0, 0), 0);
  EXPECT_EQ(WarmStartContour(PlanBouquet{}, 25.0, 0), 0);
}

class ShrunkenBoxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int d = 0; d < 2; ++d) {
      ErrorDimension dim;
      dim.lo = 1e-4;
      dim.hi = 1.0;
      query_.error_dims.push_back(dim);
    }
    fb_.observations = 5;
    fb_.max_final_contour = 2;
    fb_.support = {{0.01, 0.02}, {0.1, 0.2}};
  }
  QuerySpec query_;
  TemplateFeedback fb_;
  WarmStartPolicy policy_;
};

TEST_F(ShrunkenBoxTest, ShrinksWithGuardBandInsideDeclaredRange) {
  policy_.guard_band = 4.0;
  EssBox box;
  ASSERT_TRUE(ShrunkenBox(query_, fb_, policy_, &box));
  ASSERT_EQ(box.lo.size(), 2u);
  EXPECT_DOUBLE_EQ(box.lo[0], 0.01 / 4.0);
  EXPECT_DOUBLE_EQ(box.hi[0], 0.02 * 4.0);
  EXPECT_DOUBLE_EQ(box.lo[1], 0.1 / 4.0);
  EXPECT_DOUBLE_EQ(box.hi[1], 0.2 * 4.0);
}

TEST_F(ShrunkenBoxTest, ClampsIntoDeclaredRange) {
  fb_.support = {{2e-4, 0.9}, {0.01, 0.02}};
  policy_.guard_band = 10.0;
  EssBox box;
  // Dim 0 clamps to the full declared range; dim 1 still shrinks.
  ASSERT_TRUE(ShrunkenBox(query_, fb_, policy_, &box));
  EXPECT_DOUBLE_EQ(box.lo[0], 1e-4);
  EXPECT_DOUBLE_EQ(box.hi[0], 1.0);
  EXPECT_DOUBLE_EQ(box.lo[1], 0.01 / 10.0);
  EXPECT_DOUBLE_EQ(box.hi[1], 0.02 * 10.0);
}

TEST_F(ShrunkenBoxTest, RefusesWhenNothingShrinks) {
  fb_.support = {{1e-4, 1.0}, {1e-4, 1.0}};
  EssBox box;
  EXPECT_FALSE(ShrunkenBox(query_, fb_, policy_, &box));
  fb_.observations = 0;
  EXPECT_FALSE(ShrunkenBox(query_, fb_, policy_, &box));
  fb_.observations = 5;
  fb_.support = {{0.01, 0.02}};  // dimensionality mismatch
  EXPECT_FALSE(ShrunkenBox(query_, fb_, policy_, &box));
}

TEST_F(ShrunkenBoxTest, ResolutionsScaleWithLogRange) {
  EssBox box;
  policy_.guard_band = 4.0;
  ASSERT_TRUE(ShrunkenBox(query_, fb_, policy_, &box));
  const std::vector<int> out =
      ShrunkenResolutions(query_, box, {16, 16}, /*min_resolution=*/4);
  ASSERT_EQ(out.size(), 2u);
  for (int d = 0; d < 2; ++d) {
    const double ratio = std::log(box.hi[d] / box.lo[d]) / std::log(1.0 / 1e-4);
    const int expect =
        std::max(4, static_cast<int>(std::ceil(16 * std::min(1.0, ratio))));
    EXPECT_EQ(out[d], expect) << "dim " << d;
    EXPECT_LT(out[d], 16);
    EXPECT_GE(out[d], 4);
  }
}

TEST(ContourHistogramTest, BucketsNativeSentinelSeparately) {
  std::vector<DriverStep> steps(4);
  steps[0].contour = DriverStep::kNoContour;
  steps[1].contour = 0;
  steps[2].contour = 0;
  steps[3].contour = 2;
  const ContourHistogram h = HistogramSteps(steps);
  EXPECT_EQ(h.native, 1);
  ASSERT_EQ(h.by_contour.size(), 3u);
  EXPECT_EQ(h.by_contour[0], 2);
  EXPECT_EQ(h.by_contour[1], 0);
  EXPECT_EQ(h.by_contour[2], 1);
  EXPECT_EQ(HistogramSteps({}).native, 0);
  EXPECT_TRUE(HistogramSteps({}).by_contour.empty());
}

// Warm execution on real data: skipping a prefix of the ladder must leave
// the final result byte-identical and only remove steps.
class WarmDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchDataOptions opts;
    opts.mini_scale = 0.1;
    MakeTpchDatabase(&db_, opts);
    SyncTpchCatalog(db_, &catalog_);
    query_ = Make2DHQ8a(catalog_);
    achieved_ = BindSelectionConstants(&query_, catalog_, {0.337, 0.456});
    ASSERT_TRUE(query_.Validate(catalog_).ok());
    opt_ = std::make_unique<QueryOptimizer>(query_, catalog_,
                                            CostParams::Postgres());
    grid_ = std::make_unique<EssGrid>(query_, std::vector<int>{10, 10});
    diagram_ = std::make_unique<PlanDiagram>(
        GeneratePosp(query_, catalog_, CostParams::Postgres(), *grid_));
    bouquet_ = std::make_unique<PlanBouquet>(
        BuildBouquet(*diagram_, opt_.get()));
  }

  Database db_;
  Catalog catalog_;
  QuerySpec query_;
  std::vector<double> achieved_;
  std::unique_ptr<QueryOptimizer> opt_;
  std::unique_ptr<EssGrid> grid_;
  std::unique_ptr<PlanDiagram> diagram_;
  std::unique_ptr<PlanBouquet> bouquet_;
};

TEST_F(WarmDriverTest, WarmRunMatchesColdRunResult) {
  BouquetDriver cold(*bouquet_, *diagram_, opt_.get(), &db_);
  const DriverResult cold_res = cold.RunOptimized();
  ASSERT_TRUE(cold_res.completed);
  EXPECT_EQ(cold_res.warm_contours_skipped, 0);
  const ContourHistogram cold_hist = HistogramSteps(cold_res.steps);
  ASSERT_GT(cold_res.contours_crossed, 1);  // there is a prefix to skip

  BouquetDriver warm(*bouquet_, *diagram_, opt_.get(), &db_);
  warm.SetWarmStart(1);
  const DriverResult warm_res = warm.RunOptimized();
  ASSERT_TRUE(warm_res.completed);
  EXPECT_EQ(warm_res.warm_contours_skipped, 1);
  EXPECT_EQ(CanonicalRows(warm_res.rows), CanonicalRows(cold_res.rows));
  EXPECT_LE(warm_res.steps.size(), cold_res.steps.size());
  const ContourHistogram warm_hist = HistogramSteps(warm_res.steps);
  EXPECT_EQ(warm_hist.by_contour.empty() ? 0 : warm_hist.by_contour[0], 0)
      << "warm run must not execute the skipped contour";
  EXPECT_EQ(warm_hist.native, cold_hist.native);
}

TEST_F(WarmDriverTest, NegativeWarmStartIsIgnored) {
  BouquetDriver driver(*bouquet_, *diagram_, opt_.get(), &db_);
  driver.SetWarmStart(-3);
  const DriverResult res = driver.RunOptimized();
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.warm_contours_skipped, 0);
}

TEST_F(WarmDriverTest, SimulatorWarmZeroEqualsCold) {
  const BouquetSimulator sim(*bouquet_, *diagram_, opt_.get());
  const uint64_t qa = grid_->num_points() / 2;
  const SimResult cold = sim.RunOptimized(qa);
  const SimResult warm0 = sim.RunOptimizedWarm(qa, 0);
  ASSERT_TRUE(cold.completed);
  ASSERT_TRUE(warm0.completed);
  EXPECT_EQ(warm0.start_contour, 0);
  EXPECT_EQ(warm0.total_cost, cold.total_cost);
  EXPECT_EQ(warm0.steps.size(), cold.steps.size());

  // Even an absurdly deep warm start completes without the fallback.
  const SimResult deep =
      sim.RunOptimizedWarm(qa, static_cast<int>(bouquet_->contours.size()));
  EXPECT_TRUE(deep.completed);
  EXPECT_FALSE(deep.fallback_used);
}

}  // namespace
}  // namespace bouquet

// Tests for the Section 8 "future work" extensions implemented here:
// weak-dimension elimination, incremental bouquet maintenance, and
// underestimate-seeded execution.

#include <gtest/gtest.h>

#include "bouquet/bouquet.h"
#include "bouquet/maintenance.h"
#include "bouquet/simulator.h"
#include "ess/dim_analysis.h"
#include "ess/posp_generator.h"
#include "workloads/spaces.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

// ---------------------------------------------------------------------------
// Dimension sensitivity / elimination
// ---------------------------------------------------------------------------

TEST(DimAnalysisTest, SensitivityDetectsStrongDimensions) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace("3D_H_Q5", tpch, tpcds);
  const auto sens =
      MeasureDimSensitivity(space.query, tpch, CostParams::Postgres());
  ASSERT_EQ(sens.size(), 3u);
  for (const auto& s : sens) {
    EXPECT_GE(s.max_relative_impact, 0.0);
  }
  // The lineitem-orders join dominates the query's cost: it must register a
  // material impact.
  EXPECT_GT(sens[1].max_relative_impact, 0.5);
}

TEST(DimAnalysisTest, WeakDimensionIsEliminated) {
  // Add an artificial dimension with a negligible range: its cost impact is
  // ~zero and it must be dropped.
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  QuerySpec q = GetSpace("3D_H_Q5", tpch, tpcds).query;
  ErrorDimension weak;
  weak.kind = DimKind::kJoin;
  weak.predicate_index = 0;  // region-nation join
  weak.hi = 1.0 / 5.0;
  weak.lo = weak.hi * 0.999;  // essentially a point: no cost impact
  weak.label = "weak";
  q.error_dims.push_back(weak);

  std::vector<int> removed;
  const QuerySpec reduced = EliminateWeakDimensions(
      q, tpch, CostParams::Postgres(), /*threshold=*/0.05, &removed);
  EXPECT_EQ(reduced.NumDims(), 3);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], 3);
  // The dropped join got pinned at its geometric midpoint.
  EXPECT_GT(reduced.joins[0].default_selectivity, 0.0);
}

TEST(DimAnalysisTest, StrongDimensionsSurvive) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace("3D_H_Q5", tpch, tpcds);
  std::vector<int> removed;
  const QuerySpec reduced = EliminateWeakDimensions(
      space.query, tpch, CostParams::Postgres(), 0.05, &removed);
  EXPECT_EQ(reduced.NumDims(), 3);
  EXPECT_TRUE(removed.empty());
}

TEST(DimAnalysisTest, HugeThresholdDropsEverything) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace("3D_H_Q5", tpch, tpcds);
  std::vector<int> removed;
  const QuerySpec reduced = EliminateWeakDimensions(
      space.query, tpch, CostParams::Postgres(), 1e12, &removed);
  EXPECT_EQ(reduced.NumDims(), 0);
  EXPECT_EQ(removed.size(), 3u);
  // Reduced query still validates (predicates intact).
  EXPECT_TRUE(reduced.Validate(tpch).ok());
}

// ---------------------------------------------------------------------------
// Incremental maintenance
// ---------------------------------------------------------------------------

class MaintenanceTest : public ::testing::Test {
 protected:
  MaintenanceTest()
      : old_catalog_(MakeTpchCatalog(1.0)),
        new_catalog_(MakeTpchCatalog(2.5)),  // database grew 2.5x
        tpcds_(MakeTpcdsCatalog(100.0)),
        space_(GetSpace("3D_H_Q5", old_catalog_, tpcds_)),
        grid_(space_.query, {8, 8, 8}),
        old_diagram_(GeneratePosp(space_.query, old_catalog_,
                                  CostParams::Postgres(), grid_)) {}

  Catalog old_catalog_, new_catalog_, tpcds_;
  NamedSpace space_;
  EssGrid grid_;
  PlanDiagram old_diagram_;
};

TEST_F(MaintenanceTest, MaintainedDiagramNearFreshOptimal) {
  MaintenanceStats stats;
  const PlanDiagram maintained =
      MaintainDiagram(old_diagram_, space_.query, new_catalog_,
                      CostParams::Postgres(), /*validation_stride=*/8,
                      &stats);
  const PlanDiagram fresh = GeneratePosp(space_.query, new_catalog_,
                                         CostParams::Postgres(), grid_);
  double worst = 0.0;
  for (uint64_t i = 0; i < grid_.num_points(); ++i) {
    EXPECT_GE(maintained.cost_at(i), fresh.cost_at(i) * (1 - 1e-9));
    worst = std::max(worst, maintained.cost_at(i) / fresh.cost_at(i));
  }
  // The candidate-recosting infimum stays within a modest factor of the
  // truly optimal surface.
  EXPECT_LE(worst, 1.5) << "maintained diagram degraded too much";
  EXPECT_GE(stats.worst_validation_ratio, 1.0);
}

TEST_F(MaintenanceTest, FarFewerOptimizerCalls) {
  MaintenanceStats stats;
  MaintainDiagram(old_diagram_, space_.query, new_catalog_,
                  CostParams::Postgres(), 8, &stats);
  EXPECT_LT(stats.optimizer_calls,
            static_cast<long long>(grid_.num_points()) / 4);
  EXPECT_GT(stats.recost_evaluations, 0);
}

TEST_F(MaintenanceTest, IdentityMaintenanceIsExact) {
  // Maintaining against the *same* catalog must reproduce the optimal
  // surface exactly (the old plan set is optimal by construction).
  MaintenanceStats stats;
  const PlanDiagram maintained =
      MaintainDiagram(old_diagram_, space_.query, old_catalog_,
                      CostParams::Postgres(), 8, &stats);
  for (uint64_t i = 0; i < grid_.num_points(); ++i) {
    EXPECT_NEAR(maintained.cost_at(i), old_diagram_.cost_at(i),
                old_diagram_.cost_at(i) * 1e-9);
  }
  EXPECT_NEAR(stats.worst_validation_ratio, 1.0, 1e-9);
  EXPECT_EQ(stats.new_plans_adopted, 0);
}

TEST_F(MaintenanceTest, MaintainedBouquetStillCompletes) {
  MaintenanceStats stats;
  const PlanDiagram maintained =
      MaintainDiagram(old_diagram_, space_.query, new_catalog_,
                      CostParams::Postgres(), 8, &stats);
  QueryOptimizer opt(space_.query, new_catalog_, CostParams::Postgres());
  const PlanBouquet bouquet = BuildBouquet(maintained, &opt);
  BouquetSimulator sim(bouquet, maintained, &opt);
  for (uint64_t qa = 0; qa < grid_.num_points(); qa += 7) {
    const SimResult run = sim.RunBasic(qa);
    EXPECT_TRUE(run.completed);
    EXPECT_FALSE(run.fallback_used) << "qa=" << qa;
  }
}

// ---------------------------------------------------------------------------
// Underestimate seeding
// ---------------------------------------------------------------------------

class SeedingTest : public ::testing::Test {
 protected:
  SeedingTest()
      : tpch_(MakeTpchCatalog(1.0)),
        tpcds_(MakeTpcdsCatalog(100.0)),
        space_(GetSpace("3D_DS_Q96", tpch_, tpcds_)),
        grid_(space_.query, {8, 8, 8}),
        diagram_(GeneratePosp(space_.query, tpcds_, CostParams::Postgres(),
                              grid_)),
        opt_(space_.query, tpcds_, CostParams::Postgres()),
        bouquet_(BuildBouquet(diagram_, &opt_)),
        sim_(bouquet_, diagram_, &opt_) {}

  Catalog tpch_, tpcds_;
  NamedSpace space_;
  EssGrid grid_;
  PlanDiagram diagram_;
  QueryOptimizer opt_;
  PlanBouquet bouquet_;
  BouquetSimulator sim_;
};

TEST_F(SeedingTest, ValidSeedCompletesEverywhere) {
  for (uint64_t qa = 0; qa < grid_.num_points(); qa += 5) {
    const GridPoint qa_pt = grid_.PointAt(qa);
    GridPoint seed(qa_pt.size());
    for (size_t d = 0; d < seed.size(); ++d) seed[d] = qa_pt[d] / 2;
    const SimResult run = sim_.RunOptimizedSeeded(qa, seed);
    EXPECT_TRUE(run.completed);
    EXPECT_FALSE(run.fallback_used) << "qa=" << qa;
  }
}

TEST_F(SeedingTest, SeedingNeverIncreasesExecutions) {
  for (uint64_t qa = 0; qa < grid_.num_points(); qa += 9) {
    const GridPoint qa_pt = grid_.PointAt(qa);
    const SimResult unseeded = sim_.RunOptimized(qa);
    const SimResult seeded = sim_.RunOptimizedSeeded(qa, qa_pt);  // perfect
    EXPECT_LE(seeded.num_executions, unseeded.num_executions)
        << "qa=" << qa;
    EXPECT_LE(seeded.total_cost, unseeded.total_cost * (1 + 1e-9))
        << "qa=" << qa;
  }
}

TEST_F(SeedingTest, PerfectSeedNearOptimal) {
  // Seeding with q_a itself should cost within one contour budget of PIC.
  const uint64_t qa = grid_.num_points() - 1;
  const SimResult run = sim_.RunOptimizedSeeded(qa, grid_.PointAt(qa));
  ASSERT_TRUE(run.completed);
  EXPECT_LE(sim_.SubOpt(run, qa), 2.0 * 1.2 * bouquet_.rho());
}

TEST_F(SeedingTest, OverestimateSeedIsClampedSafely) {
  // A seed *beyond* q_a violates the contract; the implementation clamps it
  // into the first quadrant, preserving completion.
  const GridPoint qa_pt = {2, 2, 2};
  const uint64_t qa = grid_.LinearIndex(qa_pt);
  const GridPoint bad_seed = {7, 7, 7};
  const SimResult run = sim_.RunOptimizedSeeded(qa, bad_seed);
  EXPECT_TRUE(run.completed);
  EXPECT_FALSE(run.fallback_used);
}

TEST_F(SeedingTest, OriginSeedMatchesUnseeded) {
  const uint64_t qa = grid_.num_points() / 3;
  const SimResult a = sim_.RunOptimized(qa);
  const SimResult b = sim_.RunOptimizedSeeded(qa, GridPoint(3, 0));
  EXPECT_EQ(a.num_executions, b.num_executions);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
}

}  // namespace
}  // namespace bouquet

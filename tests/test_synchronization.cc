// Runtime tests for the capability wrappers in common/synchronization.h:
// mutual exclusion, try-lock semantics, reader/writer concurrency, and the
// CondVar handshake. The *static* half of the contract — that the
// annotations reject lock-discipline violations at compile time — is
// covered by tests/static/ (negative-compilation probes + meta-test).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/synchronization.h"

namespace bouquet {
namespace {

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();

  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  std::atomic<int> observed{-1};
  std::thread other([&] {
    if (mu.TryLock()) {
      observed.store(1);
      mu.Unlock();
    } else {
      observed.store(0);
    }
  });
  other.join();
  EXPECT_EQ(observed.load(), 0);
  mu.Unlock();

  // Released: a fresh attempt succeeds.
  std::thread retry([&] {
    ASSERT_TRUE(mu.TryLock());
    mu.Unlock();
  });
  retry.join();
}

TEST(SharedMutexTest, ReadersOverlapWriterExcludes) {
  SharedMutex smu;
  int value = 0;

  // Two readers must be able to hold the shared capability at once.
  std::atomic<int> readers_inside{0};
  std::atomic<int> max_overlap{0};
  std::atomic<bool> release{false};
  auto reader = [&] {
    ReaderMutexLock lock(&smu);
    const int inside = readers_inside.fetch_add(1) + 1;
    int prev = max_overlap.load();
    while (prev < inside && !max_overlap.compare_exchange_weak(prev, inside)) {
    }
    while (!release.load()) std::this_thread::yield();
    readers_inside.fetch_sub(1);
  };
  std::thread r1(reader), r2(reader);
  // Wait until both are inside (bounded spin; the assertion below is the
  // real check).
  for (int spin = 0; spin < 100000 && max_overlap.load() < 2; ++spin) {
    std::this_thread::yield();
  }
  release.store(true);
  r1.join();
  r2.join();
  EXPECT_EQ(max_overlap.load(), 2) << "readers serialized unexpectedly";

  // A writer takes the exclusive capability and its effect is visible.
  {
    WriterMutexLock lock(&smu);
    value = 42;
  }
  ReaderMutexLock lock(&smu);
  EXPECT_EQ(value, 42);
}

TEST(SharedMutexTest, TryLockSharedFailsUnderWriter) {
  SharedMutex smu;
  smu.Lock();
  std::atomic<int> got{-1};
  std::thread t([&] {
    if (smu.TryLockShared()) {
      got.store(1);
      smu.UnlockShared();
    } else {
      got.store(0);
    }
  });
  t.join();
  EXPECT_EQ(got.load(), 0);
  smu.Unlock();
}

TEST(CondVarTest, WaitWakesOnPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int produced = 0;

  std::thread consumer([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    EXPECT_EQ(produced, 99);
  });

  {
    MutexLock lock(&mu);
    produced = 99;
    ready = true;
  }
  cv.NotifyAll();
  consumer.join();
}

TEST(CondVarTest, NotifyOneWakesAWaiter) {
  Mutex mu;
  CondVar cv;
  int tokens = 0;
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (tokens == 0) cv.Wait(&mu);
      --tokens;
    });
  }
  for (int i = 0; i < kWaiters; ++i) {
    {
      MutexLock lock(&mu);
      ++tokens;
    }
    cv.NotifyOne();
  }
  // Stragglers (a NotifyOne can race a not-yet-waiting thread) are caught
  // by a final broadcast; every waiter eventually consumes one token.
  cv.NotifyAll();
  for (auto& w : waiters) w.join();
  MutexLock lock(&mu);
  EXPECT_EQ(tokens, 0);
}

}  // namespace
}  // namespace bouquet

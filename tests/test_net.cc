// Tests for the serving layer: wire codec round-trips, incremental frame
// decoding under partial/malformed/adversarial input (seeded fuzz with a
// bounded-memory invariant), Connection partial-read/partial-write
// resumption over a socketpair, token-bucket and router scheduling
// semantics (batching, throttling, shedding, drain), the simulator's
// precompiled MSO-safe plan, and a full loopback client/server integration
// pass including overload-induced DEGRADED serving.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/router.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace net {
namespace {

// -------------------------------------------------------------------- codec

TEST(WireCodecTest, QueryRoundTrip) {
  QueryMsg msg;
  msg.request_id = 0xdeadbeefcafe1234ull;
  msg.tenant_id = 7;
  msg.template_name = "tpch_eq";
  msg.selectivities = {0.001, 0.5, 1.0};

  Frame frame;
  frame.type = static_cast<uint8_t>(FrameType::kQuery);
  const std::vector<uint8_t> bytes = EncodeQuery(msg);
  ASSERT_GE(bytes.size(), kFrameHeaderBytes);
  frame.payload.assign(bytes.begin() + kFrameHeaderBytes, bytes.end());

  QueryMsg out;
  ASSERT_TRUE(DecodeQuery(frame, &out).ok());
  EXPECT_EQ(out.request_id, msg.request_id);
  EXPECT_EQ(out.tenant_id, msg.tenant_id);
  EXPECT_EQ(out.template_name, msg.template_name);
  EXPECT_EQ(out.selectivities, msg.selectivities);
}

TEST(WireCodecTest, ResultAndErrorRoundTrip) {
  ResultMsg r;
  r.request_id = 42;
  r.flags = kResultCompleted | kResultDegraded;
  r.num_executions = 3;
  r.total_cost = 123.5;
  r.server_seconds = 0.25;
  FrameDecoder dec;
  const std::vector<uint8_t> enc = EncodeResult(r);
  ASSERT_TRUE(dec.Feed(enc.data(), enc.size()).ok());
  Frame frame;
  ASSERT_TRUE(dec.Next(&frame));
  EXPECT_EQ(static_cast<FrameType>(frame.type), FrameType::kResult);
  ResultMsg rd;
  ASSERT_TRUE(DecodeResult(frame, &rd).ok());
  EXPECT_EQ(rd.request_id, r.request_id);
  EXPECT_EQ(rd.flags, r.flags);
  EXPECT_EQ(rd.num_executions, r.num_executions);
  EXPECT_DOUBLE_EQ(rd.total_cost, r.total_cost);
  EXPECT_DOUBLE_EQ(rd.server_seconds, r.server_seconds);

  ErrorMsg e;
  e.request_id = 42;
  e.code = static_cast<uint8_t>(WireError::kThrottled);
  e.message = "over quota";
  const std::vector<uint8_t> enc2 = EncodeError(e);
  ASSERT_TRUE(dec.Feed(enc2.data(), enc2.size()).ok());
  ASSERT_TRUE(dec.Next(&frame));
  ErrorMsg ed;
  ASSERT_TRUE(DecodeError(frame, &ed).ok());
  EXPECT_EQ(ed.request_id, e.request_id);
  EXPECT_EQ(ed.code, e.code);
  EXPECT_EQ(ed.message, e.message);
}

TEST(WireCodecTest, TextAndHelloRoundTrip) {
  const std::string text = "net_requests_total 12\n";
  FrameDecoder dec;
  const std::vector<uint8_t> enc =
      EncodeText(FrameType::kMetricsText, text);
  ASSERT_TRUE(dec.Feed(enc.data(), enc.size()).ok());
  Frame frame;
  ASSERT_TRUE(dec.Next(&frame));
  std::string out;
  ASSERT_TRUE(DecodeText(frame, &out).ok());
  EXPECT_EQ(out, text);

  HelloMsg hello;
  const std::vector<uint8_t> enc2 = EncodeHello(hello, FrameType::kHello);
  ASSERT_TRUE(dec.Feed(enc2.data(), enc2.size()).ok());
  ASSERT_TRUE(dec.Next(&frame));
  HelloMsg hd;
  hd.version = 0;
  ASSERT_TRUE(DecodeHello(frame, &hd).ok());
  EXPECT_EQ(hd.version, kWireVersion);
}

TEST(FrameDecoderTest, ByteAtATimeReassembly) {
  QueryMsg msg;
  msg.request_id = 9;
  msg.template_name = "t";
  msg.selectivities = {0.25};
  std::vector<uint8_t> stream = EncodeQuery(msg);
  const std::vector<uint8_t> goodbye =
      EncodeFrame(FrameType::kGoodbye, {});
  stream.insert(stream.end(), goodbye.begin(), goodbye.end());

  FrameDecoder dec;
  std::vector<Frame> frames;
  for (uint8_t b : stream) {
    ASSERT_TRUE(dec.Feed(&b, 1).ok());
    Frame f;
    while (dec.Next(&f)) frames.push_back(std::move(f));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(static_cast<FrameType>(frames[0].type), FrameType::kQuery);
  EXPECT_EQ(static_cast<FrameType>(frames[1].type), FrameType::kGoodbye);
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, OversizedDeclarationLatchesBroken) {
  FrameDecoder dec(/*max_payload=*/64);
  uint8_t header[5];
  const uint32_t huge = 65;
  std::memcpy(header, &huge, 4);
  header[4] = static_cast<uint8_t>(FrameType::kQuery);
  EXPECT_FALSE(dec.Feed(header, sizeof(header)).ok());
  EXPECT_TRUE(dec.broken());
  uint8_t byte = 0;
  EXPECT_FALSE(dec.Feed(&byte, 1).ok());  // stays broken
  Frame f;
  EXPECT_FALSE(dec.Next(&f));
}

TEST(WireCodecTest, MalformedPayloadsRejected) {
  // Truncated QUERY payload: reader runs out of bytes mid-message.
  QueryMsg msg;
  msg.template_name = "abc";
  msg.selectivities = {0.5, 0.25};
  std::vector<uint8_t> enc = EncodeQuery(msg);
  Frame frame;
  frame.type = static_cast<uint8_t>(FrameType::kQuery);
  frame.payload.assign(enc.begin() + kFrameHeaderBytes, enc.end() - 3);
  QueryMsg out;
  EXPECT_FALSE(DecodeQuery(frame, &out).ok());

  // String length prefix overrunning the payload must fail, not overread.
  Frame lying;
  lying.type = static_cast<uint8_t>(FrameType::kMetricsText);
  WireWriter w;
  w.U32(1000);  // claims 1000 bytes, provides 2
  w.U8('h');
  w.U8('i');
  lying.payload = w.Take();
  std::string text;
  EXPECT_FALSE(DecodeText(lying, &text).ok());

  // Trailing garbage after a well-formed message is a protocol error.
  Frame padded;
  padded.type = static_cast<uint8_t>(FrameType::kResult);
  std::vector<uint8_t> renc = EncodeResult(ResultMsg{});
  padded.payload.assign(renc.begin() + kFrameHeaderBytes, renc.end());
  padded.payload.push_back(0xff);
  ResultMsg rm;
  EXPECT_FALSE(DecodeResult(padded, &rm).ok());
}

// Seeded fuzz: arbitrary byte streams must never crash the decoder and its
// buffered memory must stay bounded by header + max_payload.
TEST(FrameDecoderTest, FuzzRandomStreamsBoundedMemory) {
  std::mt19937 rng(20260808);
  for (int round = 0; round < 200; ++round) {
    const uint32_t max_payload = 1u << (4 + round % 8);  // 16 B .. 2 KiB
    FrameDecoder dec(max_payload);
    std::uniform_int_distribution<int> chunk_len(1, 257);
    std::uniform_int_distribution<int> byte(0, 255);
    for (int step = 0; step < 64; ++step) {
      std::vector<uint8_t> chunk(chunk_len(rng));
      for (uint8_t& b : chunk) b = static_cast<uint8_t>(byte(rng));
      // Occasionally splice in a valid frame so some rounds make progress.
      if (step % 16 == 0) {
        const std::vector<uint8_t> good = EncodeFrame(
            FrameType::kHello, std::vector<uint8_t>(4, 0));
        chunk.insert(chunk.end(), good.begin(), good.end());
      }
      const Status fed = dec.Feed(chunk.data(), chunk.size());
      Frame f;
      while (dec.Next(&f)) {
        EXPECT_LE(f.payload.size(), max_payload);
      }
      EXPECT_LE(dec.buffered_bytes(), kFrameHeaderBytes + max_payload);
      if (!fed.ok()) {
        EXPECT_TRUE(dec.broken());
        break;
      }
    }
  }
}

// --------------------------------------------------------------- connection

class SocketPairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    local_ = fds[0];
    peer_ = fds[1];
    ASSERT_TRUE(SetNonBlocking(local_).ok());
    ASSERT_TRUE(SetNonBlocking(peer_).ok());
  }

  void TearDown() override {
    // local_ is owned (and closed) by the Connection in most tests.
    if (peer_ >= 0) close(peer_);
  }

  int local_ = -1;
  int peer_ = -1;
};

TEST_F(SocketPairTest, PartialReadsResumeAcrossFrameBoundaries) {
  Connection conn(local_, /*id=*/1);
  QueryMsg msg;
  msg.request_id = 77;
  msg.template_name = "resume";
  msg.selectivities = {0.1, 0.2};
  const std::vector<uint8_t> enc = EncodeQuery(msg);

  // First half of the frame: no complete frame yet, connection stays ok.
  const size_t half = enc.size() / 2;
  ASSERT_EQ(send(peer_, enc.data(), half, 0), static_cast<ssize_t>(half));
  std::vector<Frame> frames;
  EXPECT_EQ(conn.ReadFrames(&frames), Connection::IoResult::kOk);
  EXPECT_TRUE(frames.empty());

  // Second half: the frame completes.
  ASSERT_EQ(send(peer_, enc.data() + half, enc.size() - half, 0),
            static_cast<ssize_t>(enc.size() - half));
  EXPECT_EQ(conn.ReadFrames(&frames), Connection::IoResult::kOk);
  ASSERT_EQ(frames.size(), 1u);
  QueryMsg out;
  ASSERT_TRUE(DecodeQuery(frames[0], &out).ok());
  EXPECT_EQ(out.request_id, 77u);
  EXPECT_EQ(out.template_name, "resume");
}

TEST_F(SocketPairTest, PartialWritesResumeUntilDrained) {
  // Shrink the send buffer so a large frame cannot leave in one send().
  int small = 4096;
  setsockopt(local_, SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  Connection conn(local_, /*id=*/2);

  const std::string big(512 * 1024, 'x');
  conn.QueueWrite(EncodeText(FrameType::kMetricsText, big));
  const size_t total = conn.pending_write_bytes();
  ASSERT_GT(total, big.size());

  FrameDecoder dec;
  Frame frame;
  bool got = false;
  for (int spin = 0; spin < 100000 && !got; ++spin) {
    ASSERT_NE(conn.Flush(), Connection::IoResult::kError);
    uint8_t buf[8192];
    const ssize_t n = recv(peer_, buf, sizeof(buf), 0);
    if (n > 0) {
      ASSERT_TRUE(dec.Feed(buf, static_cast<size_t>(n)).ok());
      got = dec.Next(&frame);
    }
  }
  ASSERT_TRUE(got);
  EXPECT_FALSE(conn.want_write());
  std::string out;
  ASSERT_TRUE(DecodeText(frame, &out).ok());
  EXPECT_EQ(out, big);
}

TEST_F(SocketPairTest, GarbageStreamReportsProtocolError) {
  Connection conn(local_, /*id=*/3, /*max_payload=*/128);
  std::vector<uint8_t> garbage(64, 0xff);  // declares a ~4 GiB payload
  ASSERT_EQ(send(peer_, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  std::vector<Frame> frames;
  EXPECT_EQ(conn.ReadFrames(&frames), Connection::IoResult::kProtocolError);
}

TEST_F(SocketPairTest, PeerCloseReportsClosed) {
  Connection conn(local_, /*id=*/4);
  close(peer_);
  peer_ = -1;
  std::vector<Frame> frames;
  EXPECT_EQ(conn.ReadFrames(&frames), Connection::IoResult::kClosed);
}

// ------------------------------------------------------------- token bucket

TEST(TokenBucketTest, DeterministicRefill) {
  TokenBucket bucket(/*rate_per_s=*/2.0, /*burst=*/2.0);
  EXPECT_TRUE(bucket.TryTake(0.0));
  EXPECT_TRUE(bucket.TryTake(0.0));
  EXPECT_FALSE(bucket.TryTake(0.0));   // burst spent
  EXPECT_FALSE(bucket.TryTake(0.25));  // 0.5 tokens accrued: not enough
  EXPECT_TRUE(bucket.TryTake(0.5));    // 1.0 accrued
  EXPECT_FALSE(bucket.TryTake(0.5));
  EXPECT_TRUE(bucket.TryTake(10.0));   // refill capped at burst
  EXPECT_TRUE(bucket.TryTake(10.0));
  EXPECT_FALSE(bucket.TryTake(10.0));
}

TEST(TokenBucketTest, ZeroRateDisablesThrottling) {
  TokenBucket bucket(0.0, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.TryTake(0.0));
}

// ------------------------------------------------------------------- router

RoutedRequest MakeRouted(const std::string& tmpl, uint32_t tenant,
                         std::atomic<int>* responded,
                         std::atomic<int>* failed) {
  RoutedRequest req;
  req.query.template_name = tmpl;
  req.query.tenant_id = tenant;
  req.query.selectivities = {0.5};
  req.arrival = std::chrono::steady_clock::now();
  req.respond = [responded](const ResultMsg&) {
    if (responded != nullptr) responded->fetch_add(1);
  };
  req.fail = [failed](WireError, const std::string&) {
    if (failed != nullptr) failed->fetch_add(1);
  };
  return req;
}

TEST(RequestRouterTest, BatchesSameTemplateUpToMaxBatch) {
  RouterOptions opts;
  opts.batch_window_ms = 500.0;  // only max_batch can trigger the flushes
  opts.max_batch = 4;
  opts.max_inflight_batches = 8;

  Mutex mu;
  std::vector<size_t> batch_sizes;
  std::atomic<int> responded{0};
  RequestRouter* router_ptr = nullptr;
  RequestRouter router(
      opts,
      [&](const std::string& tmpl, std::vector<RoutedRequest> batch) {
        EXPECT_EQ(tmpl, "t");
        {
          MutexLock lock(&mu);
          batch_sizes.push_back(batch.size());
        }
        ResultMsg msg;
        for (RoutedRequest& r : batch) r.respond(msg);
        router_ptr->OnBatchDone();
      },
      [](RoutedRequest) { FAIL() << "nothing should shed"; });
  router_ptr = &router;

  for (int i = 0; i < 10; ++i) {
    router.Submit(MakeRouted("t", 0, &responded, nullptr));
  }
  router.Drain();  // flushes the final partial batch
  EXPECT_EQ(responded.load(), 10);
  {
    MutexLock lock(&mu);
    size_t total = 0;
    for (size_t s : batch_sizes) {
      EXPECT_LE(s, 4u);
      total += s;
    }
    EXPECT_EQ(total, 10u);
  }
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.admitted, 10u);
  EXPECT_EQ(stats.batched_requests, 10u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(RequestRouterTest, TokenBucketThrottlesBeyondBurst) {
  RouterOptions opts;
  opts.batch_window_ms = 0.1;
  opts.tenant_rate = 1e-6;  // effectively no refill within the test
  opts.tenant_burst = 3.0;

  std::atomic<int> responded{0};
  std::atomic<int> failed{0};
  RequestRouter* router_ptr = nullptr;
  RequestRouter router(
      opts,
      [&](const std::string&, std::vector<RoutedRequest> batch) {
        ResultMsg msg;
        for (RoutedRequest& r : batch) r.respond(msg);
        router_ptr->OnBatchDone();
      },
      [](RoutedRequest) { FAIL() << "queue never fills"; });
  router_ptr = &router;

  for (int i = 0; i < 8; ++i) {
    router.Submit(MakeRouted("t", 1, &responded, &failed));
  }
  router.Drain();
  EXPECT_EQ(responded.load(), 3);
  EXPECT_EQ(failed.load(), 5);
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.throttled, 5u);
}

TEST(RequestRouterTest, ShedsBeyondQueueBoundAndKeepsDepthBounded) {
  RouterOptions opts;
  opts.batch_window_ms = 200.0;
  opts.max_batch = 2;
  opts.max_queue_depth = 3;
  opts.max_inflight_batches = 1;

  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> responded{0};
  std::atomic<int> shed{0};
  RequestRouter* router_ptr = nullptr;
  RequestRouter router(
      opts,
      [&](const std::string&, std::vector<RoutedRequest> batch) {
        // Park the (single) inflight slot on a worker thread so submissions
        // pile up behind the queue bound.
        std::thread([&, b = std::make_shared<std::vector<RoutedRequest>>(
                            std::move(batch))]() mutable {
          gate.wait();
          ResultMsg msg;
          for (RoutedRequest& r : *b) r.respond(msg);
          router_ptr->OnBatchDone();
        }).detach();
      },
      [&](RoutedRequest req) {
        shed.fetch_add(1);
        ResultMsg msg;
        msg.flags = kResultDegraded;
        req.respond(msg);
      });
  router_ptr = &router;

  constexpr int kTotal = 20;
  for (int i = 0; i < kTotal; ++i) {
    router.Submit(MakeRouted("t", 0, &responded, nullptr));
  }
  release.set_value();
  router.Drain();
  EXPECT_EQ(responded.load(), kTotal);
  EXPECT_GE(shed.load(), 1);
  const RouterStats stats = router.stats();
  EXPECT_LE(stats.peak_queue_depth, opts.max_queue_depth);
  EXPECT_EQ(stats.admitted + stats.shed, static_cast<uint64_t>(kTotal));
}

TEST(RequestRouterTest, DrainRejectsNewSubmissions) {
  RouterOptions opts;
  std::atomic<int> failed{0};
  RequestRouter* router_ptr = nullptr;
  RequestRouter router(
      opts,
      [&](const std::string&, std::vector<RoutedRequest> batch) {
        ResultMsg msg;
        for (RoutedRequest& r : batch) r.respond(msg);
        router_ptr->OnBatchDone();
      },
      [](RoutedRequest) {});
  router_ptr = &router;
  router.Drain();
  router.Submit(MakeRouted("t", 0, nullptr, &failed));
  EXPECT_EQ(failed.load(), 1);
  EXPECT_EQ(router.stats().rejected_draining, 1u);
}

// ---------------------------------------------------------------- safe plan

TEST(SafePlanTest, RunSafeIsOneBoundedExecution) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  ServiceOptions opts;
  opts.num_threads = 2;
  opts.grid_resolution = 20;
  opts.min_shard_points = 1;
  BouquetService service(catalog, opts);

  const QuerySpec query = MakeEqQuery(catalog);
  auto bundle_or = service.GetOrCompile(query);
  ASSERT_TRUE(bundle_or.ok()) << bundle_or.status().ToString();
  const BouquetSimulator& sim = *bundle_or.value()->simulator;

  ASSERT_GE(sim.safe_plan(), 0);
  ASSERT_GT(sim.safe_budget(), 0.0);
  const uint64_t n = bundle_or.value()->grid->num_points();
  for (uint64_t qa = 0; qa < n; qa += std::max<uint64_t>(1, n / 7)) {
    const SimResult r = sim.RunSafe(qa);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.num_executions, 1);
    // The safe plan's cost at any location is bounded by its precomputed
    // worst case — that is the whole point of shedding onto it.
    EXPECT_LE(r.total_cost, sim.safe_budget() * (1.0 + 1e-9));
    EXPECT_GT(r.total_cost, 0.0);
  }
}

TEST(SafePlanTest, ServiceRunSafePlanRequiresCompiledTemplate) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  ServiceOptions opts;
  opts.num_threads = 2;
  opts.grid_resolution = 20;
  opts.min_shard_points = 1;
  BouquetService service(catalog, opts);

  ServiceRequest req;
  req.query = MakeEqQuery(catalog);
  req.actual_selectivities = {0.05};
  EXPECT_FALSE(service.RunSafePlan(req).ok());  // nothing compiled yet

  ASSERT_TRUE(service.Run(req).ok());
  auto degraded = service.RunSafePlan(req);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->degraded);
  EXPECT_TRUE(degraded->sim.completed);
  EXPECT_EQ(degraded->sim.num_executions, 1);
  EXPECT_EQ(service.stats().sheds, 1u);
}

// -------------------------------------------------------------- integration

class LoopbackServerTest : public ::testing::Test {
 protected:
  LoopbackServerTest() : catalog_(MakeTpchCatalog(1.0)) {}

  ServiceOptions FastService() {
    ServiceOptions o;
    o.num_threads = 4;
    o.grid_resolution = 20;
    o.min_shard_points = 1;
    o.tracer = &tracer_;
    o.metrics = &metrics_;
    return o;
  }

  ServerOptions FastServer() {
    ServerOptions o;
    o.num_reactors = 2;
    o.router.batch_window_ms = 1.0;
    o.tracer = &tracer_;
    o.metrics = &metrics_;
    return o;
  }

  Catalog catalog_;
  obs::Tracer tracer_{1 << 16};
  obs::MetricsRegistry metrics_;
};

TEST_F(LoopbackServerTest, ServesQueriesMetricsAndTracesOverTheWire) {
  BouquetService service(catalog_, FastService());
  BouquetServer server(&service, FastServer());
  const QuerySpec query = MakeEqQuery(catalog_);
  ASSERT_TRUE(server.RegisterTemplate(query).ok());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto client_or = BlockingClient::Connect(server.port());
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  BlockingClient client = std::move(client_or).value();
  ASSERT_TRUE(client.Hello().ok());

  // Synchronous queries: the first compiles, the rest hit the cache.
  const double locations[4] = {0.001, 0.05, 0.3, 0.9};
  for (int i = 0; i < 12; ++i) {
    QueryMsg q;
    q.request_id = 100 + i;
    q.tenant_id = i % 3;
    q.template_name = query.name;
    q.selectivities = {locations[i % 4]};
    auto out = client.Query(q);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ASSERT_TRUE(out->ok) << out->error.message;
    EXPECT_EQ(out->result.request_id, 100u + i);
    EXPECT_NE(out->result.flags & kResultCompleted, 0);
    EXPECT_EQ(out->result.flags & kResultDegraded, 0);
    EXPECT_GT(out->result.total_cost, 0.0);
    EXPECT_GE(out->result.server_seconds, 0.0);
    if (i > 0) {
      EXPECT_NE(out->result.flags & kResultCacheHit, 0);
    }
  }

  // Pipelined burst: all same-template, so batching must kick in.
  constexpr int kBurst = 16;
  for (int i = 0; i < kBurst; ++i) {
    QueryMsg q;
    q.request_id = 1000 + i;
    q.template_name = query.name;
    q.selectivities = {0.05};
    ASSERT_TRUE(client.SendFrame(EncodeQuery(q)).ok());
  }
  int completed = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto frame_or = client.RecvFrame();
    ASSERT_TRUE(frame_or.ok()) << frame_or.status().ToString();
    ASSERT_EQ(static_cast<FrameType>(frame_or.value().type),
              FrameType::kResult);
    ResultMsg r;
    ASSERT_TRUE(DecodeResult(frame_or.value(), &r).ok());
    if ((r.flags & kResultCompleted) != 0) ++completed;
  }
  EXPECT_EQ(completed, kBurst);

  // Unknown template and malformed selectivities come back as ERRORs.
  QueryMsg bad;
  bad.request_id = 7777;
  bad.template_name = "no_such_template";
  bad.selectivities = {0.5};
  auto bad_out = client.Query(bad);
  ASSERT_TRUE(bad_out.ok());
  EXPECT_FALSE(bad_out->ok);
  EXPECT_EQ(bad_out->error.code,
            static_cast<uint8_t>(WireError::kUnknownTemplate));

  bad.template_name = query.name;
  bad.selectivities = {2.0};
  bad_out = client.Query(bad);
  ASSERT_TRUE(bad_out.ok());
  EXPECT_FALSE(bad_out->ok);
  EXPECT_EQ(bad_out->error.code,
            static_cast<uint8_t>(WireError::kMalformed));

  // Live observability over the wire.
  auto metrics_or = client.MetricsText();
  ASSERT_TRUE(metrics_or.ok()) << metrics_or.status().ToString();
  EXPECT_NE(metrics_or.value().find("net_requests_total"),
            std::string::npos);
  EXPECT_NE(metrics_or.value().find("service_requests_total"),
            std::string::npos);
  auto trace_or = client.TraceJsonl();
  ASSERT_TRUE(trace_or.ok()) << trace_or.status().ToString();
  EXPECT_NE(trace_or.value().find("net.request"), std::string::npos);
  EXPECT_NE(trace_or.value().find("service.batch"), std::string::npos);

  // Graceful wire-initiated shutdown.
  ASSERT_TRUE(client.ShutdownServer().ok());
  server.Wait();

  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.requests, 28u);
  EXPECT_EQ(stats.compilations, 1u);  // 28 requests, one compile
  EXPECT_GE(stats.batch_requests, static_cast<uint64_t>(kBurst) / 2);
}

TEST_F(LoopbackServerTest, OverloadShedsToDegradedSafePlanWithBoundedQueue) {
  BouquetService service(catalog_, FastService());
  ServerOptions sopts = FastServer();
  sopts.num_reactors = 1;
  sopts.router.batch_window_ms = 50.0;
  sopts.router.max_batch = 4;
  sopts.router.max_queue_depth = 2;
  sopts.router.max_inflight_batches = 1;
  BouquetServer server(&service, sopts);
  const QuerySpec query = MakeEqQuery(catalog_);
  ASSERT_TRUE(server.RegisterTemplate(query).ok());
  ASSERT_TRUE(server.Start().ok());

  auto client_or = BlockingClient::Connect(server.port());
  ASSERT_TRUE(client_or.ok());
  BlockingClient client = std::move(client_or).value();

  // Warm the template so the safe plan exists before the flood.
  QueryMsg warm;
  warm.request_id = 1;
  warm.template_name = query.name;
  warm.selectivities = {0.05};
  auto warm_out = client.Query(warm);
  ASSERT_TRUE(warm_out.ok());
  ASSERT_TRUE(warm_out->ok);

  // Open-loop flood: far more than the queue bound admits.
  constexpr int kFlood = 40;
  for (int i = 0; i < kFlood; ++i) {
    QueryMsg q;
    q.request_id = 100 + i;
    q.template_name = query.name;
    q.selectivities = {0.2};
    ASSERT_TRUE(client.SendFrame(EncodeQuery(q)).ok());
  }
  int degraded = 0, normal = 0;
  for (int i = 0; i < kFlood; ++i) {
    auto frame_or = client.RecvFrame();
    ASSERT_TRUE(frame_or.ok()) << frame_or.status().ToString();
    ASSERT_EQ(static_cast<FrameType>(frame_or.value().type),
              FrameType::kResult);
    ResultMsg r;
    ASSERT_TRUE(DecodeResult(frame_or.value(), &r).ok());
    EXPECT_NE(r.flags & kResultCompleted, 0);
    if ((r.flags & kResultDegraded) != 0) {
      ++degraded;
    } else {
      ++normal;
    }
  }
  EXPECT_EQ(degraded + normal, kFlood);
  EXPECT_GE(degraded, 1);  // overload must actually shed

  const RouterStats rstats = server.router().stats();
  EXPECT_LE(rstats.peak_queue_depth, sopts.router.max_queue_depth);
  EXPECT_GE(rstats.shed, static_cast<uint64_t>(degraded));
  EXPECT_EQ(service.stats().sheds, rstats.shed);
  EXPECT_EQ(service.stats().compilations, 1u);

  (void)client.ShutdownServer();
  server.RequestShutdown();
  server.Wait();
}

}  // namespace
}  // namespace net
}  // namespace bouquet

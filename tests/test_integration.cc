// End-to-end integration tests: the full compile-time + run-time pipeline,
// cross-checking the cost-based simulator against real executions, and the
// headline robustness relationships across baselines.

#include <gtest/gtest.h>

#include "bouquet/bounds.h"
#include "bouquet/driver.h"
#include "bouquet/simulator.h"
#include "ess/pic.h"
#include "ess/posp_generator.h"
#include "robustness/metrics.h"
#include "robustness/native.h"
#include "robustness/seer.h"
#include "workloads/spaces.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

TEST(IntegrationTest, HeadlineRelationshipsOnBenchmarkSpace) {
  // On 3D_DS_Q96: BOU's MSO must sit under its theoretical bound and far
  // under NAT's MSO; ASO must stay comparable (the Figures 14/15 story).
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace("3D_DS_Q96", tpch, tpcds);
  const EssGrid grid(space.query, {10, 10, 10});
  const PlanDiagram diagram =
      GeneratePosp(space.query, tpcds, CostParams::Postgres(), grid);
  EXPECT_TRUE(IsPicMonotone(diagram));
  QueryOptimizer opt(space.query, tpcds, CostParams::Postgres());
  const PlanBouquet bouquet = BuildBouquet(diagram, &opt);

  const RobustnessProfile nat = ComputeNativeProfile(diagram, &opt);
  BouquetSimulator sim(bouquet, diagram, &opt);
  const BouquetProfile bou = ComputeBouquetProfile(sim, false);

  EXPECT_FALSE(bou.any_fallback);
  EXPECT_LE(bou.mso,
            MultiDMsoBound(2.0, bouquet.rho(), 0.2) * (1 + 1e-9));
  EXPECT_GT(nat.mso, bou.mso * 10)
      << "bouquet should improve MSO by orders of magnitude";
  EXPECT_LT(bou.aso, nat.aso * 2.0) << "average case must stay comparable";
}

TEST(IntegrationTest, CommercialEngineShowsSameShape) {
  // Figure 19: the robustness story is engine-independent.
  const Catalog tpch = MakeTpchCatalog(1.0);
  QuerySpec q = Make3DHQ5b(tpch);
  const EssGrid grid(q, {8, 8, 8});
  const PlanDiagram diagram =
      GeneratePosp(q, tpch, CostParams::Commercial(), grid);
  QueryOptimizer opt(q, tpch, CostParams::Commercial());
  const PlanBouquet bouquet = BuildBouquet(diagram, &opt);
  const RobustnessProfile nat = ComputeNativeProfile(diagram, &opt);
  BouquetSimulator sim(bouquet, diagram, &opt);
  const BouquetProfile bou = ComputeBouquetProfile(sim, false);
  EXPECT_FALSE(bou.any_fallback);
  EXPECT_GT(nat.mso, bou.mso);
  EXPECT_LE(bou.mso, MultiDMsoBound(2.0, bouquet.rho(), 0.2) * (1 + 1e-9));
}

TEST(IntegrationTest, SimulatorAgreesWithRealDriverOnOutcome) {
  // The cost-based simulation and the real-data execution must agree on the
  // qualitative outcome: which contour completes and with how many
  // executions (within one contour of slack for cost-model vs charge
  // differences).
  Database db;
  TpchDataOptions opts;
  opts.mini_scale = 0.2;
  MakeTpchDatabase(&db, opts);
  Catalog catalog;
  SyncTpchCatalog(db, &catalog);
  QuerySpec query = Make2DHQ8a(catalog);
  const auto achieved = BindSelectionConstants(&query, catalog, {0.3, 0.4});
  QueryOptimizer opt(query, catalog, CostParams::Postgres());
  const EssGrid grid(query, {16, 16});
  const PlanDiagram diagram =
      GeneratePosp(query, catalog, CostParams::Postgres(), grid);
  const PlanBouquet bouquet = BuildBouquet(diagram, &opt);

  // Simulated run at the nearest grid location to the true q_a.
  GridPoint qa_pt = {grid.AxisFloor(0, achieved[0]),
                     grid.AxisFloor(1, achieved[1])};
  BouquetSimulator sim(bouquet, diagram, &opt);
  SimOptions restart;
  restart.continue_same_plan = false;  // driver restarts plans too
  BouquetSimulator sim_restart(bouquet, diagram, &opt, restart);
  const SimResult simulated = sim_restart.RunBasic(grid.LinearIndex(qa_pt));

  BouquetDriver driver(bouquet, diagram, &opt, &db);
  const DriverResult real = driver.RunBasic();

  ASSERT_TRUE(simulated.completed);
  ASSERT_TRUE(real.completed);
  EXPECT_NEAR(real.steps.back().contour, simulated.final_contour, 1);
  EXPECT_NEAR(real.num_executions, simulated.num_executions, 3);
}

TEST(IntegrationTest, BouquetCardinalityIndependentOfDimensionality) {
  // Figure 18's implication: bouquet size stays ~10 as dims grow.
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  for (const char* name : {"3D_H_Q5", "4D_DS_Q26", "5D_DS_Q19"}) {
    const NamedSpace space = GetSpace(name, tpch, tpcds);
    const Catalog& cat = space.benchmark == "H" ? tpch : tpcds;
    const EssGrid grid(space.query,
                       std::vector<int>(space.query.NumDims(), 6));
    const PlanDiagram diagram =
        GeneratePosp(space.query, cat, CostParams::Postgres(), grid);
    QueryOptimizer opt(space.query, cat, CostParams::Postgres());
    const PlanBouquet bouquet = BuildBouquet(diagram, &opt);
    EXPECT_LE(bouquet.cardinality(), 15) << name;
    EXPECT_GE(bouquet.cardinality(), 1) << name;
  }
}

TEST(IntegrationTest, SeerVsNatVsBouOrdering) {
  // Figure 14/17 story: SEER ~= NAT on MSO; BOU crushes both; SEER's harm
  // is bounded while BOU's harm is small but can exceed lambda.
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace("3D_H_Q7", tpch, tpcds);
  const EssGrid grid(space.query, {8, 8, 8});
  const PlanDiagram diagram =
      GeneratePosp(space.query, tpch, CostParams::Postgres(), grid);
  QueryOptimizer opt(space.query, tpch, CostParams::Postgres());

  const RobustnessProfile nat = ComputeNativeProfile(diagram, &opt);
  const SeerResult seer_red = SeerReduce(diagram, &opt, 0.2, 1 << 20);
  const RobustnessProfile seer =
      ComputeAssignmentProfile(diagram, &opt, seer_red.plan_at);
  const PlanBouquet bouquet = BuildBouquet(diagram, &opt);
  BouquetSimulator sim(bouquet, diagram, &opt);
  const BouquetProfile bou = ComputeBouquetProfile(sim, false);

  EXPECT_LT(bou.mso, nat.mso / 5);
  EXPECT_GT(seer.mso, nat.mso / 10);  // SEER no material MSO improvement
  // Harm: bounded for both, and rare for BOU.
  EXPECT_LE(MaxHarm(seer.subopt_worst, nat.subopt_worst), 0.73);
  // Harm is rare (the paper reports <1% of locations at fine resolution;
  // the coarse 8^3 grid concentrates boundary effects a little more).
  EXPECT_LE(HarmFraction(bou.subopt, nat.subopt_worst), 0.10);
}

}  // namespace
}  // namespace bouquet

// Tests for bouquet/bounds: the Section 3 guarantees.

#include <gtest/gtest.h>

#include "bouquet/bounds.h"
#include "ess/posp_generator.h"
#include "workloads/spaces.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

TEST(BoundsTest, TheoremOneValueAtTwo) {
  EXPECT_DOUBLE_EQ(TheoremOneMso(2.0), 4.0);
}

TEST(BoundsTest, TheoremTwoOptimalityOfDoubling) {
  // r = 2 minimizes r^2/(r-1): no other ratio does better (Theorem 2 says no
  // deterministic algorithm beats 4 at all).
  for (double r = 1.05; r < 6.0; r += 0.05) {
    EXPECT_GE(TheoremOneMso(r), 4.0 - 1e-9) << "r=" << r;
  }
}

TEST(BoundsTest, MultiDScalesWithRho) {
  EXPECT_DOUBLE_EQ(MultiDMsoBound(2.0, 1, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(MultiDMsoBound(2.0, 5, 0.0), 20.0);
  EXPECT_DOUBLE_EQ(MultiDMsoBound(2.0, 5, 0.2), 24.0);
}

TEST(BoundsTest, ModelErrorInflation) {
  EXPECT_DOUBLE_EQ(ModelErrorInflation(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ModelErrorInflation(0.4), 1.96);
  // The paper's example: delta = 0.4 means at most ~2x MSO inflation.
  EXPECT_NEAR(ModelErrorInflation(0.4), 2.0, 0.05);
}

TEST(BoundsTest, EquationEightTighterThanClosedForm) {
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  for (const char* name : {"3D_H_Q5", "3D_DS_Q96", "4D_DS_Q26"}) {
    const NamedSpace space = GetSpace(name, tpch, tpcds);
    const Catalog& cat = space.benchmark == "H" ? tpch : tpcds;
    const EssGrid grid(space.query,
                       std::vector<int>(space.query.NumDims(), 7));
    const PlanDiagram d =
        GeneratePosp(space.query, cat, CostParams::Postgres(), grid);
    QueryOptimizer opt(space.query, cat, CostParams::Postgres());
    const PlanBouquet b = BuildBouquet(d, &opt);
    const double eq8 = EquationEightBound(b);
    const double closed = MultiDMsoBound(2.0, b.rho(), 0.2);
    EXPECT_GT(eq8, 0.0);
    // Equation 8 uses the true per-contour counts; it cannot exceed the
    // closed form by more than the first-band boundary slack (IC_1/Cmin can
    // be up to r, and the geometric sum below IC_1 contributes < r/(r-1)).
    EXPECT_LE(eq8, closed * 2.0 + 4.0) << name;
  }
}

TEST(BoundsTest, EquationEightAnorexicBeatsRawPosp) {
  // Table 1's message: anorexic reduction slashes the bound.
  const Catalog tpch = MakeTpchCatalog(1.0);
  const Catalog tpcds = MakeTpcdsCatalog(100.0);
  const NamedSpace space = GetSpace("5D_DS_Q19", tpch, tpcds);
  const EssGrid grid(space.query, std::vector<int>(5, 6));
  const PlanDiagram d =
      GeneratePosp(space.query, tpcds, CostParams::Postgres(), grid);
  QueryOptimizer opt(space.query, tpcds, CostParams::Postgres());
  BouquetParams raw;
  raw.anorexic = false;
  const PlanBouquet b_raw = BuildBouquet(d, &opt, raw);
  const PlanBouquet b_anx = BuildBouquet(d, &opt);
  EXPECT_LE(b_anx.rho(), b_raw.rho());
  EXPECT_LT(EquationEightBound(b_anx), EquationEightBound(b_raw) * 1.2 + 1);
}

}  // namespace
}  // namespace bouquet

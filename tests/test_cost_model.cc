// Tests for optimizer/cost_model: monotonicity (the foundation of PCM),
// parameterizations, and qualitative crossovers.

#include <gtest/gtest.h>

#include "optimizer/cost_model.h"

namespace bouquet {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModel cm_{CostParams::Postgres()};
};

TEST_F(CostModelTest, PagesFloor) {
  EXPECT_DOUBLE_EQ(cm_.Pages(1, 8), 1.0);
  EXPECT_NEAR(cm_.Pages(8192, 100), 100.0, 1e-9);
}

TEST_F(CostModelTest, SeqScanGrowsWithRowsAndQuals) {
  const double c1 = cm_.SeqScanCost(1000, 100, 0, 1000);
  const double c2 = cm_.SeqScanCost(2000, 100, 0, 2000);
  const double c3 = cm_.SeqScanCost(1000, 100, 3, 1000);
  EXPECT_GT(c2, c1);
  EXPECT_GT(c3, c1);
}

TEST_F(CostModelTest, IndexScanMonotoneInMatches) {
  double prev = 0.0;
  for (double matched : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    const double c = cm_.IndexScanCost(100000, 100, matched, 0, matched);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST_F(CostModelTest, IndexBeatsSeqAtLowSelectivityOnly) {
  // 1M rows, 100B wide: index wins at 0.01% but loses at 50%.
  const double rows = 1e6;
  const double lo_sel = 1e-4, hi_sel = 0.5;
  const double seq_lo = cm_.SeqScanCost(rows, 100, 1, rows * lo_sel);
  const double idx_lo =
      cm_.IndexScanCost(rows, 100, rows * lo_sel, 0, rows * lo_sel);
  EXPECT_LT(idx_lo, seq_lo);
  const double seq_hi = cm_.SeqScanCost(rows, 100, 1, rows * hi_sel);
  const double idx_hi =
      cm_.IndexScanCost(rows, 100, rows * hi_sel, 0, rows * hi_sel);
  EXPECT_GT(idx_hi, seq_hi);
}

TEST_F(CostModelTest, HashJoinMonotoneInInputs) {
  const InputEst small{1000, 100, 64};
  const InputEst big{100000, 100, 64};
  EXPECT_GT(cm_.HashJoinCost(big, small, 1000),
            cm_.HashJoinCost(small, small, 1000));
  EXPECT_GT(cm_.HashJoinCost(small, big, 1000),
            cm_.HashJoinCost(small, small, 1000));
  EXPECT_GT(cm_.HashJoinCost(small, small, 100000),
            cm_.HashJoinCost(small, small, 1000));
}

TEST_F(CostModelTest, HashJoinSpillKicksIn) {
  // Build side above work_mem costs extra IO.
  const InputEst probe{1000, 0, 64};
  const double wm = CostParams::Postgres().work_mem_bytes;
  const InputEst fits{wm / 64 / 2, 0, 64};
  const InputEst spills{wm / 64 * 4, 0, 64};
  const double c_fit = cm_.HashJoinCost(probe, fits, 10);
  const double c_spill = cm_.HashJoinCost(probe, spills, 10);
  // More than 8x build rows (and spill IO) — clearly super-linear jump.
  EXPECT_GT(c_spill, c_fit * 4);
}

TEST_F(CostModelTest, MergeJoinIncludesSorts) {
  const InputEst l{10000, 0, 64};
  const InputEst r{10000, 0, 64};
  const double merge = cm_.MergeJoinCost(l, r, 1000);
  EXPECT_GT(merge, cm_.SortCost(10000, 64) * 2);
}

TEST_F(CostModelTest, SortCostExternalPenalty) {
  const double wm = CostParams::Postgres().work_mem_bytes;
  const double fits = cm_.SortCost(wm / 64 / 2, 64);
  const double spills = cm_.SortCost(wm / 64 * 4, 64);
  EXPECT_GT(spills, fits * 8);
}

TEST_F(CostModelTest, IndexNLJoinScalesWithOuter) {
  const InputEst outer_small{100, 0, 64};
  const InputEst outer_big{100000, 0, 64};
  const double c_small = cm_.IndexNLJoinCost(outer_small, 1e6, 100, 0, 100);
  const double c_big = cm_.IndexNLJoinCost(outer_big, 1e6, 100000, 0, 100000);
  EXPECT_GT(c_big, c_small * 500);
}

TEST_F(CostModelTest, IndexNLBeatsHashForTinyOuter) {
  // 10 outer rows probing a 1M-row inner: NL wins; 100k outer rows: hash
  // wins. This crossover is what makes the POSP non-trivial.
  const InputEst inner{1e6, cm_.SeqScanCost(1e6, 100, 0, 1e6), 100};
  {
    const InputEst outer{10, 0, 64};
    const double nl = cm_.IndexNLJoinCost(outer, 1e6, 10, 0, 10);
    const double hj = cm_.HashJoinCost(outer, inner, 10);
    EXPECT_LT(nl, hj);
  }
  {
    const InputEst outer{100000, 0, 64};
    const double nl = cm_.IndexNLJoinCost(outer, 1e6, 100000, 0, 100000);
    const double hj = cm_.HashJoinCost(outer, inner, 100000);
    EXPECT_GT(nl, hj);
  }
}

TEST_F(CostModelTest, MaterialNLJoinQuadratic) {
  const InputEst a{1000, 0, 64};
  const InputEst b{1000, 0, 64};
  const InputEst b10{10000, 0, 64};
  const double c1 = cm_.MaterialNLJoinCost(a, b, 10);
  const double c10 = cm_.MaterialNLJoinCost(a, b10, 10);
  EXPECT_GT(c10, c1 * 5);
}

TEST(CostParamsTest, FactoriesDiffer) {
  const CostParams pg = CostParams::Postgres();
  const CostParams com = CostParams::Commercial();
  EXPECT_NE(pg.random_page_cost, com.random_page_cost);
  EXPECT_NE(pg.cpu_tuple_cost, com.cpu_tuple_cost);
  EXPECT_NE(pg.work_mem_bytes, com.work_mem_bytes);
}

// Property sweep: every join cost function is monotone non-decreasing in the
// output cardinality (a PCM prerequisite).
class JoinCostMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinCostMonotoneTest, MonotoneInOutput) {
  const CostModel cm{GetParam() == 0 ? CostParams::Postgres()
                                     : CostParams::Commercial()};
  const InputEst l{5000, 100, 64};
  const InputEst r{20000, 400, 64};
  double prev_h = 0, prev_m = 0, prev_n = 0, prev_i = 0;
  for (double out : {0.0, 10.0, 1e3, 1e5, 1e7}) {
    const double h = cm.HashJoinCost(l, r, out);
    const double m = cm.MergeJoinCost(l, r, out);
    const double n = cm.MaterialNLJoinCost(l, r, out);
    const double i = cm.IndexNLJoinCost(l, 20000, out, 0, out);
    EXPECT_GE(h, prev_h);
    EXPECT_GE(m, prev_m);
    EXPECT_GE(n, prev_n);
    EXPECT_GE(i, prev_i);
    prev_h = h;
    prev_m = m;
    prev_n = n;
    prev_i = i;
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, JoinCostMonotoneTest,
                         ::testing::Values(0, 1));

}  // namespace
}  // namespace bouquet

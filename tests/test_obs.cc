// Tests for the runtime observability layer (src/obs): tracer/span
// mechanics, metrics registry + exporters, and the end-to-end wiring into
// BouquetService and BouquetDriver — including the machine-checked budget
// invariant over an exported trace (the per-step analogue of Theorem 3's
// "cost-limited" premise).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bouquet/driver.h"
#include "ess/posp_generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"
#include "workloads/spaces.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

// Numeric attribute lookup; NaN when absent.
double NumAttr(const obs::TraceEvent& ev, const std::string& key) {
  for (const auto& [k, v] : ev.num_attrs) {
    if (k == key) return v;
  }
  return std::nan("");
}

bool HasStrAttr(const obs::TraceEvent& ev, const std::string& key) {
  for (const auto& [k, v] : ev.str_attrs) {
    if (k == key) return true;
  }
  return false;
}

std::vector<obs::TraceEvent> SpansNamed(
    const std::vector<obs::TraceEvent>& events, const std::string& name) {
  std::vector<obs::TraceEvent> out;
  for (const auto& ev : events) {
    if (ev.name == name) out.push_back(ev);
  }
  return out;
}

// The trace-wide budget invariant (same tolerance as
// scripts/trace_schema.json): on every execution-carrying span, finite
// charged stays within one charge granule of the budget.
void CheckBudgetInvariant(const std::vector<obs::TraceEvent>& events) {
  int checked = 0;
  for (const auto& ev : events) {
    if (ev.name != "driver.step" && ev.name != "sim.step" &&
        ev.name != "exec.plan") {
      continue;
    }
    if (!std::isnan(NumAttr(ev, "build_failed"))) continue;
    const double budget = NumAttr(ev, "budget");
    const double charged = NumAttr(ev, "charged");
    ASSERT_FALSE(std::isnan(budget)) << ev.name << " span without budget";
    ASSERT_FALSE(std::isnan(charged)) << ev.name << " span without charged";
    if (std::isfinite(budget)) {
      EXPECT_LE(charged, budget * 1.01 + 10.0)
          << ev.name << ": charged " << charged << " vs budget " << budget;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0) << "no budgeted execution spans in trace";
}

TEST(TracerTest, SpanNestingAndAttributes) {
  obs::Tracer tracer(64);
  obs::Span root = tracer.StartSpan("service.request");
  const uint64_t root_id = root.id();
  ASSERT_TRUE(root.enabled());
  EXPECT_EQ(root.trace_id(), root_id);  // roots anchor their own trace
  {
    obs::Span child = tracer.StartSpan("driver.step", &root);
    child.Num("budget", 42.0).Flag("completed", true).Str("signature", "sig");
    child.End();
  }
  root.End();
  root.End();  // idempotent

  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);  // children End() before parents
  EXPECT_EQ(events[0].name, "driver.step");
  EXPECT_EQ(events[0].parent_id, root_id);
  EXPECT_EQ(events[0].trace_id, root_id);
  EXPECT_DOUBLE_EQ(NumAttr(events[0], "budget"), 42.0);
  EXPECT_DOUBLE_EQ(NumAttr(events[0], "completed"), 1.0);
  EXPECT_TRUE(HasStrAttr(events[0], "signature"));
  EXPECT_EQ(events[1].name, "service.request");
  EXPECT_EQ(events[1].parent_id, 0u);
  EXPECT_GE(events[1].dur_s, events[0].dur_s);
}

TEST(TracerTest, NullTracerYieldsDisabledSpans) {
  obs::Span s = obs::Tracer::Begin(nullptr, "anything");
  EXPECT_FALSE(s.enabled());
  EXPECT_EQ(s.id(), 0u);
  s.Num("k", 1.0).Flag("f", true).Str("s", "v");  // all no-ops
  s.End();
  obs::Span u = obs::Tracer::BeginUnder(nullptr, "anything", 7, 7);
  EXPECT_FALSE(u.enabled());
}

TEST(TracerTest, RingBufferWrapsAndCountsDrops) {
  obs::Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    obs::Span s = tracer.StartSpan("driver.step");
    s.Num("i", i);
    s.End();
  }
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first unwrap: the survivors are the last four, in order.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(NumAttr(events[i], "i"), 6.0 + i);
  }
  tracer.Clear();
  EXPECT_EQ(tracer.Snapshot().size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, JsonlExportShapeAndNonFiniteEncoding) {
  obs::Tracer tracer(16);
  obs::Span s = tracer.StartSpan("driver.step");
  s.Num("budget", std::numeric_limits<double>::infinity())
      .Num("charged", 12.5)
      .Str("signature", "a\"b\\c");  // needs escaping
  s.End();
  std::ostringstream os;
  tracer.ExportJsonl(os);
  const std::string line = os.str();
  EXPECT_NE(line.find("\"name\":\"driver.step\""), std::string::npos);
  EXPECT_NE(line.find("\"budget\":\"inf\""), std::string::npos)
      << "non-finite numerics must be exported as quoted strings: " << line;
  EXPECT_NE(line.find("\"charged\":12.5"), std::string::npos);
  EXPECT_NE(line.find("a\\\"b\\\\c"), std::string::npos);
  EXPECT_EQ(line.find("inf,"), std::string::npos)
      << "bare inf is not valid JSON: " << line;
  // Exactly one line per span, newline-terminated.
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
}

TEST(MetricsRegistryTest, InstrumentsAccumulateAndReRegisterByName) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("bouquet_executions_total", "execs");
  c->Inc();
  c->Inc(4);
  EXPECT_EQ(c->value(), 5u);
  // Same name -> same instrument (cross-subsystem sharing).
  EXPECT_EQ(reg.GetCounter("bouquet_executions_total", "other help"), c);

  obs::Gauge* g = reg.GetGauge("service_cache_hit_rate", "rate");
  g->Set(0.25);
  g->Add(0.5);
  EXPECT_DOUBLE_EQ(g->value(), 0.75);

  obs::Histogram* h =
      reg.GetHistogram("service_compile_seconds", "latency", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(100.0);  // +Inf bucket
  const auto snap = h->snapshot();
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 100.55);
}

TEST(MetricsRegistryTest, PrometheusExportFormat) {
  obs::MetricsRegistry reg;
  reg.GetCounter("bouquet_executions_total", "Plan executions")->Inc(3);
  reg.GetGauge("service_cache_hit_rate", "hit rate")->Set(0.5);
  obs::Histogram* h = reg.GetHistogram("service_compile_seconds",
                                       "compile latency", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  const std::string text = reg.ExportPrometheus();
  EXPECT_NE(text.find("# HELP bouquet_executions_total Plan executions"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE bouquet_executions_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("bouquet_executions_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE service_cache_hit_rate gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE service_compile_seconds histogram"),
            std::string::npos);
  // Cumulative buckets + the +Inf bucket + _sum/_count series.
  EXPECT_NE(text.find("service_compile_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("service_compile_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("service_compile_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("service_compile_seconds_count 2"), std::string::npos);

  const std::string json = reg.ExportJson();
  EXPECT_NE(json.find("\"bouquet_executions_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: BouquetService with sinks attached (simulate mode).
// ---------------------------------------------------------------------------

TEST(ServiceObservabilityTest, TracedRequestsSatisfyBudgetInvariant) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  obs::Tracer tracer(1 << 14);
  obs::MetricsRegistry metrics;
  ServiceOptions opts;
  opts.num_threads = 2;
  opts.grid_resolution = 20;
  opts.tracer = &tracer;
  opts.metrics = &metrics;
  BouquetService service(catalog, opts);

  const QuerySpec query = MakeEqQuery(catalog);
  for (double s : {0.002, 0.05, 0.4, 0.9}) {
    ServiceRequest req;
    req.query = query;
    req.actual_selectivities = {s};
    auto res = service.Run(req);
    ASSERT_TRUE(res.ok());
    ASSERT_TRUE(res->sim.completed);
  }

  const auto events = tracer.Snapshot();
  ASSERT_FALSE(events.empty());
  // Machine-check the per-step "charged <= budget (+ one granule)"
  // invariant over every execution span in the trace.
  CheckBudgetInvariant(events);

  // Span-tree shape: one request root per Run, compiles under requests,
  // sim runs under requests, steps under sim runs.
  const auto requests = SpansNamed(events, "service.request");
  ASSERT_EQ(requests.size(), 4u);
  const auto compiles = SpansNamed(events, "service.compile");
  ASSERT_EQ(compiles.size(), 1u);  // single template, compiled once
  EXPECT_EQ(compiles[0].parent_id, requests[0].span_id);
  const auto sim_runs = SpansNamed(events, "sim.run");
  ASSERT_EQ(sim_runs.size(), 4u);
  int steps_total = 0;
  for (const auto& run : sim_runs) {
    EXPECT_FALSE(std::isnan(NumAttr(run, "subopt")));
    EXPECT_DOUBLE_EQ(NumAttr(run, "completed"), 1.0);
    for (const auto& step : SpansNamed(events, "sim.step")) {
      if (step.parent_id == run.span_id) ++steps_total;
    }
  }
  EXPECT_GT(steps_total, 0);

  // Referential integrity: every parented span's parent is in the export
  // with a matching trace id (capacity was ample: nothing dropped).
  EXPECT_EQ(tracer.dropped(), 0u);
  for (const auto& ev : events) {
    if (ev.parent_id == 0) continue;
    bool found = false;
    for (const auto& other : events) {
      if (other.span_id == ev.parent_id) {
        EXPECT_EQ(other.trace_id, ev.trace_id);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "dangling parent for span " << ev.span_id;
  }

  // The JSONL export round-trips through a file and contains one line per
  // snapshot event (scripts/check_trace_schema.py validates the same file
  // shape in CI).
  const char* path = "/tmp/test_obs_trace.jsonl";
  ASSERT_TRUE(tracer.ExportJsonlFile(path).ok());
  std::ifstream in(path);
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++lines;
  }
  EXPECT_EQ(lines, static_cast<int>(events.size()));
  std::remove(path);

  // Metrics: the required instruments are exposed with sane values.
  const std::string prom = metrics.ExportPrometheus();
  EXPECT_NE(prom.find("service_requests_total 4"), std::string::npos);
  EXPECT_NE(prom.find("service_cache_hits_total 3"), std::string::npos);
  EXPECT_NE(prom.find("service_cache_misses_total 1"), std::string::npos);
  EXPECT_NE(prom.find("bouquet_executions_total"), std::string::npos);
  EXPECT_NE(prom.find("bouquet_contour_crossings_total"), std::string::npos);
  EXPECT_NE(prom.find("bouquet_spills_total"), std::string::npos);
  EXPECT_NE(prom.find("service_cache_hit_rate 0.75"), std::string::npos);
  EXPECT_NE(prom.find("service_compile_seconds_bucket"), std::string::npos);
  EXPECT_NE(prom.find("bouquet_suboptimality_count 4"), std::string::npos);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.plan_executions,
            metrics.GetCounter("bouquet_executions_total", "")->value());
  EXPECT_GT(stats.plan_executions, 0u);
}

TEST(ServiceObservabilityTest, DetachedSinksProduceNothing) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  ServiceOptions opts;
  opts.num_threads = 2;
  opts.grid_resolution = 20;
  BouquetService service(catalog, opts);
  ServiceRequest req;
  req.query = MakeEqQuery(catalog);
  req.actual_selectivities = {0.1};
  auto res = service.Run(req);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->sim.completed);  // observability off changes nothing
}

// ---------------------------------------------------------------------------
// End-to-end: real-data BouquetDriver with sinks attached.
// ---------------------------------------------------------------------------

class DriverObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchDataOptions opts;
    opts.mini_scale = 0.2;
    MakeTpchDatabase(&db_, opts);
    SyncTpchCatalog(db_, &catalog_);
    query_ = Make2DHQ8a(catalog_);
    BindSelectionConstants(&query_, catalog_, {0.337, 0.456});
    ASSERT_TRUE(query_.Validate(catalog_).ok());
    opt_ = std::make_unique<QueryOptimizer>(query_, catalog_,
                                            CostParams::Postgres());
    grid_ = std::make_unique<EssGrid>(query_, std::vector<int>{16, 16});
    diagram_ = std::make_unique<PlanDiagram>(
        GeneratePosp(query_, catalog_, CostParams::Postgres(), *grid_));
    bouquet_ =
        std::make_unique<PlanBouquet>(BuildBouquet(*diagram_, opt_.get()));
  }

  Database db_;
  Catalog catalog_;
  QuerySpec query_;
  std::unique_ptr<QueryOptimizer> opt_;
  std::unique_ptr<EssGrid> grid_;
  std::unique_ptr<PlanDiagram> diagram_;
  std::unique_ptr<PlanBouquet> bouquet_;
};

TEST_F(DriverObsTest, OptimizedRunTraceMatchesStepsAndLearnsDims) {
  obs::Tracer tracer(1 << 16);
  obs::MetricsRegistry metrics;
  BouquetDriver driver(*bouquet_, *diagram_, opt_.get(), &db_);
  driver.SetObservability(&tracer, &metrics);
  const DriverResult res = driver.RunOptimized();
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(tracer.dropped(), 0u);

  const auto events = tracer.Snapshot();
  CheckBudgetInvariant(events);

  // Every DriverStep has exactly one driver.step span, in order, with
  // matching spill/completion/budget records.
  const auto run_spans = SpansNamed(events, "driver.run_optimized");
  ASSERT_EQ(run_spans.size(), 1u);
  const auto steps = SpansNamed(events, "driver.step");
  ASSERT_EQ(steps.size(), res.steps.size());
  int spilled_spans = 0, spilled_steps = 0;
  for (size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i].parent_id, run_spans[0].span_id);
    EXPECT_DOUBLE_EQ(NumAttr(steps[i], "contour"), res.steps[i].contour);
    EXPECT_DOUBLE_EQ(NumAttr(steps[i], "plan_id"), res.steps[i].plan_id);
    EXPECT_DOUBLE_EQ(NumAttr(steps[i], "charged"), res.steps[i].charged);
    EXPECT_EQ(NumAttr(steps[i], "spilled") == 1.0, res.steps[i].spilled);
    EXPECT_EQ(NumAttr(steps[i], "completed") == 1.0, res.steps[i].completed);
    spilled_spans += NumAttr(steps[i], "spilled") == 1.0 ? 1 : 0;
    spilled_steps += res.steps[i].spilled ? 1 : 0;
  }
  EXPECT_EQ(spilled_spans, spilled_steps);
  EXPECT_GT(spilled_steps, 0) << "2D H_Q8a at (0.337,0.456) must spill";

  // Spill-mode learning surfaces as q_run trace events and the
  // dims-learned counter (both error dims are discoverable here).
  const auto qrun_events = SpansNamed(events, "driver.qrun");
  EXPECT_FALSE(qrun_events.empty());
  bool any_learn_event = false;
  for (const auto& ev : qrun_events) {
    any_learn_event |= !std::isnan(NumAttr(ev, "learned_dim"));
  }
  EXPECT_TRUE(any_learn_event);
  EXPECT_EQ(
      metrics.GetCounter("bouquet_driver_dims_learned_total", "")->value(),
      2u);

  // Executor spans nest under the steps and carry operator records.
  const auto exec_plans = SpansNamed(events, "exec.plan");
  ASSERT_EQ(exec_plans.size(), res.steps.size());
  const auto exec_nodes = SpansNamed(events, "exec.node");
  EXPECT_GT(exec_nodes.size(), 0u);
  for (const auto& node : exec_nodes) {
    EXPECT_FALSE(std::isnan(NumAttr(node, "tuples_out")));
    EXPECT_GE(NumAttr(node, "node_wall_seconds"), 0.0);
  }

  // Driver metrics agree with the result record.
  EXPECT_EQ(
      metrics.GetCounter("bouquet_driver_executions_total", "")->value(),
      static_cast<uint64_t>(res.num_executions));
  EXPECT_EQ(metrics.GetCounter("bouquet_driver_spills_total", "")->value(),
            static_cast<uint64_t>(spilled_steps));
  EXPECT_EQ(metrics.GetCounter("bouquet_driver_fallbacks_total", "")->value(),
            0u);
}

TEST_F(DriverObsTest, SafetyNetFallbackIsTracedAndCounted) {
  // Starve every contour so the safety net must complete the query; the
  // trace and metrics must say so explicitly.
  PlanBouquet starved = *bouquet_;
  for (BouquetContour& c : starved.contours) c.budget = 1.0;
  obs::Tracer tracer(1 << 16);
  obs::MetricsRegistry metrics;
  BouquetDriver driver(starved, *diagram_, opt_.get(), &db_);
  driver.SetObservability(&tracer, &metrics);
  const DriverResult res = driver.RunBasic();
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(tracer.dropped(), 0u);

  const auto events = tracer.Snapshot();
  const auto steps = SpansNamed(events, "driver.step");
  ASSERT_EQ(steps.size(), res.steps.size());
  // The final step span is the unbudgeted fallback, past the last contour.
  const auto& last = steps.back();
  EXPECT_TRUE(std::isinf(NumAttr(last, "budget")));
  EXPECT_DOUBLE_EQ(NumAttr(last, "completed"), 1.0);
  EXPECT_DOUBLE_EQ(NumAttr(last, "contour"),
                   static_cast<double>(starved.contours.size()));
  // All earlier spans are aborted budgeted executions.
  for (size_t i = 0; i + 1 < steps.size(); ++i) {
    EXPECT_DOUBLE_EQ(NumAttr(steps[i], "completed"), 0.0);
    EXPECT_TRUE(std::isfinite(NumAttr(steps[i], "budget")));
  }
  const auto run_spans = SpansNamed(events, "driver.run_basic");
  ASSERT_EQ(run_spans.size(), 1u);
  EXPECT_DOUBLE_EQ(NumAttr(run_spans[0], "fallback"), 1.0);
  EXPECT_DOUBLE_EQ(NumAttr(run_spans[0], "contours_crossed"),
                   static_cast<double>(starved.contours.size()));

  EXPECT_EQ(metrics.GetCounter("bouquet_driver_fallbacks_total", "")->value(),
            1u);
  EXPECT_EQ(
      metrics.GetCounter("bouquet_driver_contour_crossings_total", "")
          ->value(),
      static_cast<uint64_t>(starved.contours.size()));
  // Budget-utilization histogram saw every budgeted (non-fallback) step.
  const auto snap =
      metrics
          .GetHistogram("bouquet_driver_budget_utilization", "",
                        obs::BudgetUtilizationBuckets())
          ->snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(res.num_executions - 1));
}

}  // namespace
}  // namespace bouquet

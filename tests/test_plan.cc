// Tests for optimizer/plan and optimizer/plan_signature: tree utilities,
// error-node location, explain output, and signature canonicalization.

#include <gtest/gtest.h>

#include "optimizer/plan.h"
#include "optimizer/plan_signature.h"

namespace bouquet {
namespace {

PlanNodeRef Scan(OpType op, int table, std::vector<int> filters = {},
                 int index_filter = -1) {
  auto n = std::make_shared<PlanNode>();
  n->op = op;
  n->table_idx = table;
  n->filter_idxs = std::move(filters);
  n->index_filter = index_filter;
  return n;
}

PlanNodeRef Join(OpType op, PlanNodeRef l, PlanNodeRef r,
                 std::vector<int> joins, int index_join = -1) {
  auto n = std::make_shared<PlanNode>();
  n->op = op;
  n->left = std::move(l);
  n->right = std::move(r);
  n->join_idxs = std::move(joins);
  n->index_join = index_join;
  return n;
}

// HJ[j1]( HJ[j0]( IS(t0;f0), SS(t1) ), SS(t2;f1) )
PlanNodeRef SampleTree() {
  return Join(OpType::kHashJoin,
              Join(OpType::kHashJoin,
                   Scan(OpType::kIndexScan, 0, {0}, 0),
                   Scan(OpType::kSeqScan, 1), {0}),
              Scan(OpType::kSeqScan, 2, {1}), {1});
}

TEST(PlanTest, CountAndCollect) {
  const PlanNodeRef root = SampleTree();
  EXPECT_EQ(CountNodes(*root), 5);
  const auto nodes = CollectNodes(*root);
  ASSERT_EQ(nodes.size(), 5u);
  // Preorder: root, left subtree, then right scan.
  EXPECT_EQ(nodes[0], root.get());
  EXPECT_EQ(nodes[1], root->left.get());
  EXPECT_EQ(nodes[2], root->left->left.get());
  EXPECT_EQ(nodes[3], root->left->right.get());
  EXPECT_EQ(nodes[4], root->right.get());
}

TEST(PlanTest, IsScanIsJoin) {
  const PlanNodeRef root = SampleTree();
  EXPECT_TRUE(root->is_join());
  EXPECT_FALSE(root->is_scan());
  EXPECT_TRUE(root->right->is_scan());
}

TEST(PlanTest, ErrorNodeMaxDepth) {
  const PlanNodeRef root = SampleTree();
  // Filter 0 lives on the deepest scan (depth 2); filter 1 on the right
  // scan (depth 1); join 0 at depth 1; join 1 at the root (depth 0).
  EXPECT_EQ(ErrorNodeMaxDepth(*root, false, 0), 2);
  EXPECT_EQ(ErrorNodeMaxDepth(*root, false, 1), 1);
  EXPECT_EQ(ErrorNodeMaxDepth(*root, true, 0), 1);
  EXPECT_EQ(ErrorNodeMaxDepth(*root, true, 1), 0);
  EXPECT_EQ(ErrorNodeMaxDepth(*root, false, 7), -1);  // absent
}

TEST(PlanTest, FindPredicateNode) {
  const PlanNodeRef root = SampleTree();
  EXPECT_EQ(FindPredicateNode(*root, false, 0), root->left->left.get());
  EXPECT_EQ(FindPredicateNode(*root, false, 1), root->right.get());
  EXPECT_EQ(FindPredicateNode(*root, true, 0), root->left.get());
  EXPECT_EQ(FindPredicateNode(*root, true, 1), root.get());
  EXPECT_EQ(FindPredicateNode(*root, true, 9), nullptr);
}

TEST(PlanTest, SignatureStructure) {
  const std::string sig = PlanSignature(*SampleTree());
  EXPECT_EQ(sig, "HJ[j1](HJ[j0](IS(t0;ix=f0;f0),SS(t1)),SS(t2;f1))");
}

TEST(PlanTest, SignatureIgnoresAnnotations) {
  const PlanNodeRef a = SampleTree();
  PlanNodeRef b = SampleTree();
  const_cast<PlanNode*>(b.get())->est_cost = 12345.0;
  const_cast<PlanNode*>(b.get())->est_rows = 99.0;
  EXPECT_EQ(PlanSignature(*a), PlanSignature(*b));
}

TEST(PlanTest, SignatureDistinguishesOperators) {
  const PlanNodeRef hj =
      Join(OpType::kHashJoin, Scan(OpType::kSeqScan, 0),
           Scan(OpType::kSeqScan, 1), {0});
  const PlanNodeRef mj =
      Join(OpType::kMergeJoin, Scan(OpType::kSeqScan, 0),
           Scan(OpType::kSeqScan, 1), {0});
  EXPECT_NE(PlanSignature(*hj), PlanSignature(*mj));
}

TEST(PlanTest, SignatureDistinguishesChildOrder) {
  const PlanNodeRef ab =
      Join(OpType::kHashJoin, Scan(OpType::kSeqScan, 0),
           Scan(OpType::kSeqScan, 1), {0});
  const PlanNodeRef ba =
      Join(OpType::kHashJoin, Scan(OpType::kSeqScan, 1),
           Scan(OpType::kSeqScan, 0), {0});
  EXPECT_NE(PlanSignature(*ab), PlanSignature(*ba));
}

TEST(PlanTest, ExplainContainsStructure) {
  const std::string text =
      ExplainPlan(*SampleTree(), {"part", "lineitem", "orders"});
  EXPECT_NE(text.find("HashJoin"), std::string::npos);
  EXPECT_NE(text.find("IndexScan part"), std::string::npos);
  EXPECT_NE(text.find("SeqScan orders"), std::string::npos);
  EXPECT_NE(text.find("[j1]"), std::string::npos);
}

TEST(PlanTest, OpTypeNames) {
  EXPECT_STREQ(OpTypeName(OpType::kIndexNLJoin), "IndexNLJoin");
  EXPECT_STREQ(OpTypeShortName(OpType::kMergeJoin), "MJ");
  EXPECT_STREQ(OpTypeShortName(OpType::kSeqScan), "SS");
}

}  // namespace
}  // namespace bouquet

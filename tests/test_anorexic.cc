// Tests for ess/anorexic: the lambda-swallowing reduction.

#include <gtest/gtest.h>

#include <set>

#include "ess/anorexic.h"
#include "ess/posp_generator.h"
#include "workloads/spaces.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

class AnorexicTest : public ::testing::Test {
 protected:
  AnorexicTest()
      : tpch_(MakeTpchCatalog(1.0)),
        tpcds_(MakeTpcdsCatalog(100.0)),
        space_(GetSpace("3D_H_Q5", tpch_, tpcds_)),
        grid_(space_.query, {8, 8, 8}),
        diagram_(GeneratePosp(space_.query, tpch_, CostParams::Postgres(),
                              grid_)),
        opt_(space_.query, tpch_, CostParams::Postgres()) {}

  Catalog tpch_, tpcds_;
  NamedSpace space_;
  EssGrid grid_;
  PlanDiagram diagram_;
  QueryOptimizer opt_;
};

TEST_F(AnorexicTest, ReducesPlanCount) {
  const AnorexicResult r = AnorexicReduce(diagram_, &opt_, 0.2);
  EXPECT_LT(r.plans_after, r.plans_before);
  EXPECT_EQ(r.plans_after, static_cast<int>(r.retained.size()));
  EXPECT_GE(r.plans_after, 1);
}

TEST_F(AnorexicTest, RespectsLambdaBound) {
  const double lambda = 0.2;
  const AnorexicResult r = AnorexicReduce(diagram_, &opt_, lambda);
  for (uint64_t i = 0; i < grid_.num_points(); ++i) {
    const int plan = r.plan_at[i];
    const double c =
        opt_.CostPlanAt(*diagram_.plan(plan).root, grid_.SelectivityAt(i));
    EXPECT_LE(c, (1.0 + lambda) * diagram_.cost_at(i) * (1 + 1e-9))
        << "point " << i;
  }
}

TEST_F(AnorexicTest, AssignmentsUseRetainedPlansOnly) {
  const AnorexicResult r = AnorexicReduce(diagram_, &opt_, 0.2);
  const std::set<int> retained(r.retained.begin(), r.retained.end());
  for (int p : r.plan_at) EXPECT_TRUE(retained.count(p));
}

TEST_F(AnorexicTest, ZeroLambdaKeepsOptimalAssignment) {
  // With lambda = 0 a swallow requires the replacement to be exactly
  // optimal too; assignments must stay within the optimal cost.
  const AnorexicResult r = AnorexicReduce(diagram_, &opt_, 0.0);
  for (uint64_t i = 0; i < grid_.num_points(); i += 13) {
    const double c = opt_.CostPlanAt(*diagram_.plan(r.plan_at[i]).root,
                                     grid_.SelectivityAt(i));
    EXPECT_LE(c, diagram_.cost_at(i) * (1 + 1e-6));
  }
}

TEST_F(AnorexicTest, LargerLambdaReducesMore) {
  const AnorexicResult small = AnorexicReduce(diagram_, &opt_, 0.05);
  const AnorexicResult big = AnorexicReduce(diagram_, &opt_, 0.5);
  EXPECT_LE(big.plans_after, small.plans_after);
}

TEST_F(AnorexicTest, SubsetReduction) {
  // Reduce only over a subset of points (as done on contours).
  std::vector<uint64_t> subset;
  for (uint64_t i = 0; i < grid_.num_points(); i += 3) subset.push_back(i);
  const AnorexicResult r = AnorexicReduce(diagram_, &opt_, 0.2, &subset);
  ASSERT_EQ(r.plan_at.size(), subset.size());
  for (size_t i = 0; i < subset.size(); ++i) {
    const double c = opt_.CostPlanAt(*diagram_.plan(r.plan_at[i]).root,
                                     grid_.SelectivityAt(subset[i]));
    EXPECT_LE(c, 1.2 * diagram_.cost_at(subset[i]) * (1 + 1e-9));
  }
}

TEST_F(AnorexicTest, AnorexicLevelsOnBenchmark) {
  // The headline claim of [15]: lambda = 20% brings diagrams to ~10 plans.
  const AnorexicResult r = AnorexicReduce(diagram_, &opt_, 0.2);
  EXPECT_LE(r.plans_after, 12) << "expected anorexic levels";
}

}  // namespace
}  // namespace bouquet

// Tests for the paging layer: slotted pages, the deterministic table
// writer, the buffer manager's eviction policies (LRU, 2Q with ghost
// queue, kNone baseline), pin refcounting and eviction starvation, and the
// spill writer's temp-segment lifecycle.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "storage/buffer_manager.h"
#include "storage/dataset.h"
#include "storage/index.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/paged_table.h"
#include "storage/table.h"

namespace bouquet {
namespace storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

DataTable ThreeColTable(int64_t rows) {
  DataTable t("t", {"a", "b", "c"});
  for (int64_t i = 0; i < rows; ++i) {
    t.AppendRow({i, i * 7 % 100, -i});
  }
  return t;
}

// ---------------------------------------------------------------------------
// Slotted pages
// ---------------------------------------------------------------------------

TEST(SlottedPageTest, InsertAndReadBack) {
  std::vector<uint8_t> frame(kPageSize);
  SlottedPage page(frame.data());
  page.Init(7);
  EXPECT_TRUE(page.valid());
  EXPECT_EQ(page.header()->page_no, 7u);

  const uint8_t rec1[] = {1, 2, 3, 4};
  const uint8_t rec2[] = {9, 8};
  EXPECT_EQ(page.Insert(rec1, sizeof(rec1)), 0);
  EXPECT_EQ(page.Insert(rec2, sizeof(rec2)), 1);
  EXPECT_EQ(page.num_records(), 2);

  size_t len = 0;
  const uint8_t* r = page.Record(0, &len);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(len, sizeof(rec1));
  EXPECT_EQ(std::memcmp(r, rec1, len), 0);
  r = page.Record(1, &len);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(len, sizeof(rec2));
  EXPECT_EQ(page.Record(2, &len), nullptr);
  EXPECT_EQ(page.Record(-1, &len), nullptr);
}

TEST(SlottedPageTest, FillsToCapacityThenRejects) {
  std::vector<uint8_t> frame(kPageSize);
  SlottedPage page(frame.data());
  page.Init(0);
  const size_t rec_bytes = 24;  // 3 columns * 8 bytes
  const int cap = SlottedPage::Capacity(rec_bytes);
  std::vector<uint8_t> rec(rec_bytes, 0xAB);
  for (int i = 0; i < cap; ++i) {
    EXPECT_EQ(page.Insert(rec.data(), rec.size()), i);
  }
  EXPECT_FALSE(page.Fits(rec.size()));
  EXPECT_EQ(page.Insert(rec.data(), rec.size()), -1);
  EXPECT_EQ(page.num_records(), cap);
}

// ---------------------------------------------------------------------------
// Deterministic table writer + paged reads
// ---------------------------------------------------------------------------

TEST(TableWriterTest, DeterministicBytes) {
  const DataTable t = ThreeColTable(1000);
  const std::string p1 = TempPath("det_a.btbl");
  const std::string p2 = TempPath("det_b.btbl");
  ASSERT_TRUE(WriteTableFile(p1, t).ok());
  ASSERT_TRUE(WriteTableFile(p2, t).ok());
  const std::string b1 = ReadAll(p1);
  ASSERT_FALSE(b1.empty());
  EXPECT_EQ(b1, ReadAll(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(PagedTableTest, ValuesMatchSourceTable) {
  const DataTable t = ThreeColTable(997);  // not a multiple of rows/page
  const std::string dir = TempPath("paged_vals");
  StorageManager sm({dir, /*pool_pages=*/8, EvictionPolicyKind::kLru});
  auto imported = sm.ImportTable(t);
  ASSERT_TRUE(imported.ok()) << imported.status().message();
  PagedTable* pt = imported.value();
  ASSERT_EQ(pt->num_rows(), t.num_rows());
  ASSERT_EQ(pt->num_columns(), t.num_columns());
  EXPECT_EQ(pt->ColumnIndex("b"), 1);
  for (int64_t r = 0; r < t.num_rows(); r += 13) {
    PageGuard g = pt->PinRowPage(r);
    ASSERT_TRUE(g.valid());
    for (int c = 0; c < t.num_columns(); ++c) {
      EXPECT_EQ(pt->ValueIn(g, pt->SlotOfRow(r), c), t.value(c, r))
          << "row " << r << " col " << c;
    }
  }
  // Column streaming (index/catalog builds) returns the full column.
  EXPECT_EQ(pt->ReadColumn(2), t.column(2));
}

TEST(PagedTableTest, DecodePageIsColumnMajor) {
  const DataTable t = ThreeColTable(500);
  const std::string dir = TempPath("paged_decode");
  StorageManager sm({dir, 8, EvictionPolicyKind::kLru});
  auto imported = sm.ImportTable(t);
  ASSERT_TRUE(imported.ok());
  PagedTable* pt = imported.value();
  const int rpp = pt->rows_per_page();
  std::vector<int64_t> scratch(
      static_cast<size_t>(pt->num_columns()) * rpp);
  PageGuard g = pt->PinRowPage(0);
  const int n = pt->DecodePage(g, scratch.data());
  ASSERT_EQ(n, rpp);  // 500 rows > one page's worth for 3 columns
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < pt->num_columns(); ++c) {
      EXPECT_EQ(scratch[static_cast<size_t>(c) * rpp + i], t.value(c, i));
    }
  }
}

// ---------------------------------------------------------------------------
// Eviction policies (accounting layer: Access simulation)
// ---------------------------------------------------------------------------

PageId P(uint32_t page) { return PageId{1, page}; }

TEST(BufferPolicyTest, NoneIsAlwaysMiss) {
  BufferManager bm(4, EvictionPolicyKind::kNone);
  EXPECT_FALSE(bm.Access(P(1)));
  EXPECT_FALSE(bm.Access(P(1)));
  EXPECT_FALSE(bm.Access(P(1)));
  const BufferStats s = bm.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 3u);
}

TEST(BufferPolicyTest, LruEvictsLeastRecentlyUsed) {
  BufferManager bm(2, EvictionPolicyKind::kLru);
  EXPECT_FALSE(bm.Access(P(1)));  // miss: {1}
  EXPECT_FALSE(bm.Access(P(2)));  // miss: {2,1}
  EXPECT_TRUE(bm.Access(P(1)));   // hit, 1 becomes MRU: {1,2}
  EXPECT_FALSE(bm.Access(P(3)));  // miss, evicts 2: {3,1}
  EXPECT_TRUE(bm.Access(P(1)));   // hit
  EXPECT_FALSE(bm.Access(P(2)));  // miss: 2 was the victim
  const BufferStats s = bm.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.evictions, 2u);  // 2 evicted twice (re-admitted in between)
}

TEST(BufferPolicyTest, TwoQGhostPromotesToHotQueue) {
  // pool=4 -> Kin = 1, Kout = 2. A page must fall off A1in's FIFO tail
  // into the ghost queue and be re-accessed to earn a slot in Am.
  BufferManager bm(4, EvictionPolicyKind::k2Q);
  EXPECT_FALSE(bm.Access(P(1)));  // miss -> A1in {1}
  EXPECT_TRUE(bm.Access(P(1)));   // A1in hit: stays put, no promotion
  // 2..5 overflow the pool: the FIFO tail (1) is demoted to A1out.
  EXPECT_FALSE(bm.Access(P(2)));
  EXPECT_FALSE(bm.Access(P(3)));
  EXPECT_FALSE(bm.Access(P(4)));
  EXPECT_FALSE(bm.Access(P(5)));
  BufferStats s = bm.stats();
  EXPECT_EQ(s.ghost_hits, 0u);
  EXPECT_EQ(s.evictions, 1u);  // exactly the demoted tail
  // Touching the ghost is a miss but promotes straight to Am.
  EXPECT_FALSE(bm.Access(P(1)));
  s = bm.stats();
  EXPECT_EQ(s.ghost_hits, 1u);
  // Now 1 is hot: repeated touches are hits even as A1in churns.
  EXPECT_TRUE(bm.Access(P(1)));
  EXPECT_FALSE(bm.Access(P(6)));
  EXPECT_FALSE(bm.Access(P(7)));
  EXPECT_TRUE(bm.Access(P(1)));
}

TEST(BufferPolicyTest, TwoQScanResistance) {
  // A long one-shot scan must not displace the hot set: scan pages enter
  // through the small A1in and leave without ever touching Am.
  BufferManager bm(8, EvictionPolicyKind::k2Q);  // Kin=2, Kout=4
  // Establish a hot page via ghost promotion.
  bm.Access(P(100));
  for (uint32_t p = 1; p <= 8; ++p) bm.Access(P(p));  // push 100 to ghost
  bm.Access(P(100));                                  // ghost hit -> Am
  ASSERT_EQ(bm.stats().ghost_hits, 1u);
  ASSERT_TRUE(bm.Access(P(100)));
  // 50-page cold scan.
  for (uint32_t p = 200; p < 250; ++p) EXPECT_FALSE(bm.Access(P(p)));
  // The hot page survived the scan.
  EXPECT_TRUE(bm.Access(P(100)));
}

TEST(BufferPolicyTest, ResetForTestClearsPolicyAndStats) {
  BufferManager bm(2, EvictionPolicyKind::kLru);
  bm.Access(P(1));
  bm.Access(P(1));
  bm.ResetForTest();
  const BufferStats s = bm.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_FALSE(bm.Access(P(1)));  // cold again
}

// ---------------------------------------------------------------------------
// Physical layer: pins, zombies, starvation, writeback
// ---------------------------------------------------------------------------

class PinnedFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("pin_test.bpf");
    auto created = PageFile::Create(path_);
    ASSERT_TRUE(created.ok());
    file_ = std::move(created.value());
    for (int i = 0; i < 8; ++i) {
      auto page = file_->AllocatePage();
      ASSERT_TRUE(page.ok());
    }
  }
  void TearDown() override {
    file_.reset();
    std::remove(path_.c_str());
  }
  std::string path_;
  std::unique_ptr<PageFile> file_;
};

TEST_F(PinnedFixture, PinRefcountsAndReclaim) {
  BufferManager bm(2, EvictionPolicyKind::kLru);
  const uint16_t fid = bm.RegisterFile(file_.get());
  const PageId id{fid, 0};
  {
    PageGuard g1 = bm.Pin(id);
    ASSERT_TRUE(g1.valid());
    EXPECT_EQ(bm.stats().physical_reads, 1u);
    {
      PageGuard g2 = bm.Pin(id);  // second pin: same frame, no new read
      ASSERT_TRUE(g2.valid());
      EXPECT_EQ(g2.data(), g1.data());
      EXPECT_EQ(bm.stats().physical_reads, 1u);
      EXPECT_EQ(bm.stats().pinned_frames, 1u);  // one frame, two pins
    }
    EXPECT_EQ(bm.stats().pinned_frames, 1u);  // still pinned by g1
  }
  // Never Access()ed -> not resident -> reclaimed at last unpin.
  EXPECT_EQ(bm.stats().pinned_frames, 0u);
  EXPECT_EQ(bm.physical_frames(), 0u);
  EXPECT_EQ(bm.stats().pinned_peak, 1u);
}

TEST_F(PinnedFixture, AccessedPageStaysResidentAfterUnpin) {
  BufferManager bm(4, EvictionPolicyKind::kLru);
  const uint16_t fid = bm.RegisterFile(file_.get());
  const PageId id{fid, 0};
  bm.Access(id);  // logically admitted
  { PageGuard g = bm.Pin(id); ASSERT_TRUE(g.valid()); }
  EXPECT_EQ(bm.physical_frames(), 1u);  // resident survives the unpin
  { PageGuard g = bm.Pin(id); ASSERT_TRUE(g.valid()); }
  EXPECT_EQ(bm.stats().physical_reads, 1u);  // second pin was frame reuse
}

TEST_F(PinnedFixture, AllPinnedStarvationOvershootsPool) {
  // The pool holds 2 pages but 6 are pinned at once: eviction is starved,
  // Pin never fails, and the overshoot is observable via physical_frames.
  BufferManager bm(2, EvictionPolicyKind::kLru);
  const uint16_t fid = bm.RegisterFile(file_.get());
  std::vector<PageGuard> guards;
  for (uint32_t p = 0; p < 6; ++p) {
    bm.Access(PageId{fid, p});  // policy admits + evicts per its budget...
    guards.push_back(bm.Pin(PageId{fid, p}));
    ASSERT_TRUE(guards.back().valid());
  }
  EXPECT_GT(bm.physical_frames(), bm.pool_pages());
  EXPECT_EQ(bm.physical_frames(), 6u);
  EXPECT_EQ(bm.stats().pinned_peak, 6u);
  // ...so most frames are zombies (evicted-but-pinned); dropping the pins
  // reclaims them down to at most the resident set.
  guards.clear();
  EXPECT_LE(bm.physical_frames(), bm.pool_pages());
  EXPECT_EQ(bm.stats().pinned_frames, 0u);
}

TEST_F(PinnedFixture, DirtyZombieWritesBackAtLastUnpin) {
  BufferManager bm(1, EvictionPolicyKind::kLru);
  const uint16_t fid = bm.RegisterFile(file_.get());
  const PageId a{fid, 0};
  bm.Access(a);
  PageGuard g = bm.Pin(a);
  ASSERT_TRUE(g.valid());
  g.mutable_data()[100] = 0x5A;
  // Evict `a` while pinned (pool of 1, new page admitted): zombie.
  bm.Access(PageId{fid, 1});
  EXPECT_EQ(bm.stats().evictions, 1u);
  EXPECT_EQ(bm.stats().writebacks, 0u);  // deferred: still pinned
  g.Release();
  EXPECT_EQ(bm.stats().writebacks, 1u);
  // The bytes are durable: a fresh fault sees them.
  PageGuard g2 = bm.Pin(a);
  ASSERT_TRUE(g2.valid());
  EXPECT_EQ(g2.data()[100], 0x5A);
}

TEST_F(PinnedFixture, FailedWritebackCountsWriteErrors) {
  // Eviction has no caller to return a Status to, so a writeback whose
  // pwrite fails must surface through stats().write_errors (and the
  // buffer_write_errors_total counter) instead of vanishing. Force the
  // failure by closing the file's fd under the manager: the dirty page's
  // writeback hits EBADF.
  BufferManager bm(1, EvictionPolicyKind::kLru);
  obs::MetricsRegistry metrics;
  bm.SetObservability(&metrics, nullptr);
  const uint16_t fid = bm.RegisterFile(file_.get());
  const PageId a{fid, 0};
  bm.Access(a);
  {
    PageGuard g = bm.Pin(a);
    ASSERT_TRUE(g.valid());
    g.mutable_data()[7] = 0x42;
  }
  ASSERT_TRUE(file_->CloseAndRemove().ok());  // fd now invalid
  // Evict the dirty resident frame: writeback runs and fails.
  bm.Access(PageId{fid, 1});
  EXPECT_EQ(bm.stats().evictions, 1u);
  EXPECT_EQ(bm.stats().writebacks, 1u);  // attempted...
  EXPECT_EQ(bm.stats().write_errors, 1u);  // ...and recorded as lost
  EXPECT_EQ(
      metrics.GetCounter("buffer_write_errors_total", "")->value(), 1u);
}

// ---------------------------------------------------------------------------
// Spill writer
// ---------------------------------------------------------------------------

TEST(SpillWriterTest, WritesPagesAndRemovesSegmentOnDeath) {
  const std::string dir = TempPath("spill_dir");
  StorageManager sm({dir, 4, EvictionPolicyKind::kLru});
  std::string spill_path;
  {
    SpillWriter w(&sm, 3);
    ASSERT_TRUE(w.ok());
    for (int64_t i = 0; i < 3000; ++i) w.Append({i, i + 1, i + 2});
    EXPECT_EQ(w.rows_written(), 3000);
    EXPECT_GT(w.pages_written(), 1u);
    EXPECT_GT(sm.buffer()->stats().physical_writes, 0u);
  }
  // Writer death dropped the segment (and its frames).
  EXPECT_EQ(sm.buffer()->physical_frames(), 0u);
}

TEST(SpillWriterTest, SpillNeverTouchesAccountingStats) {
  const std::string dir = TempPath("spill_acct");
  StorageManager sm({dir, 4, EvictionPolicyKind::k2Q});
  const uint64_t misses_before = sm.buffer()->stats().misses;
  {
    SpillWriter w(&sm, 2);
    ASSERT_TRUE(w.ok());
    for (int64_t i = 0; i < 5000; ++i) w.Append({i, -i});
  }
  const BufferStats s = sm.buffer()->stats();
  EXPECT_EQ(s.misses, misses_before);  // physical only: no Access() calls
  EXPECT_EQ(s.hits, 0u);
}

// ---------------------------------------------------------------------------
// Dataset writer
// ---------------------------------------------------------------------------

TEST(DatasetTest, WriteOnDiskDatasetIsDeterministic) {
  DatasetSpec spec;
  spec.seed = 77;
  spec.num_tables = 2;
  spec.rows_per_table = 2000;
  const std::string d1 = TempPath("ds_a");
  const std::string d2 = TempPath("ds_b");
  ASSERT_TRUE(WriteOnDiskDataset(d1, spec).ok());
  ASSERT_TRUE(WriteOnDiskDataset(d2, spec).ok());
  for (const std::string& name : DatasetTableNames(spec)) {
    const std::string b = ReadAll(d1 + "/" + name + ".btbl");
    ASSERT_FALSE(b.empty()) << name;
    EXPECT_EQ(b, ReadAll(d2 + "/" + name + ".btbl")) << name;
  }
}

TEST(DatasetTest, OpenedDatasetMatchesGeneratedTables) {
  DatasetSpec spec;
  spec.seed = 5;
  spec.num_tables = 3;
  spec.rows_per_table = 1500;
  const std::string dir = TempPath("ds_open");
  ASSERT_TRUE(WriteOnDiskDataset(dir, spec).ok());
  StorageManager sm({dir, 16, EvictionPolicyKind::k2Q});
  const std::vector<std::string> names = DatasetTableNames(spec);
  for (int i = 0; i < spec.num_tables; ++i) {
    auto opened = sm.OpenTable(names[i]);
    ASSERT_TRUE(opened.ok()) << names[i];
    const DataTable expect = GenerateDatasetTable(spec, i);
    PagedTable* pt = opened.value();
    ASSERT_EQ(pt->num_rows(), expect.num_rows());
    for (int c = 0; c < expect.num_columns(); ++c) {
      EXPECT_EQ(pt->ReadColumn(c), expect.column(c)) << names[i] << " col "
                                                     << c;
    }
  }
  // The fact table carries fks referencing each dimension's pk domain.
  PagedTable* fact = sm.FindTable("fact");
  ASSERT_NE(fact, nullptr);
  EXPECT_EQ(fact->ColumnIndex("fk1"), 1);
  EXPECT_EQ(fact->ColumnIndex("fk2"), 2);
}

// Database::AttachStorage registers schema shells and serves indexes built
// by streaming paged columns.
TEST(DatasetTest, AttachStorageServesIndexesOverPagedTables) {
  DatasetSpec spec;
  spec.seed = 11;
  spec.num_tables = 2;
  spec.rows_per_table = 800;
  const std::string dir = TempPath("ds_attach");
  ASSERT_TRUE(WriteOnDiskDataset(dir, spec).ok());
  StorageManager sm({dir, 16, EvictionPolicyKind::k2Q});
  for (const std::string& n : DatasetTableNames(spec)) {
    ASSERT_TRUE(sm.OpenTable(n).ok());
  }
  Database db;
  db.AttachStorage(&sm);
  ASSERT_NE(db.paged("fact"), nullptr);
  EXPECT_EQ(db.paged("nope"), nullptr);
  EXPECT_EQ(db.table("fact").num_rows(), 0);  // shell: schema only

  const DataTable expect = GenerateDatasetTable(spec, 0);
  const int c0 = expect.ColumnIndex("c0");
  const SortedIndex& sorted = db.sorted_index("fact", c0);
  EXPECT_EQ(sorted.CountRange(INT64_MIN, INT64_MAX), spec.rows_per_table);
  const HashIndex& hash = db.hash_index("fact", 0);
  EXPECT_EQ(hash.Lookup(1).size(), 1u);  // pk is unique

  Catalog cat;
  db.SyncCatalog(&cat);
  ASSERT_TRUE(cat.HasTable("fact"));
  EXPECT_DOUBLE_EQ(cat.GetTable("fact").stats.row_count,
                   static_cast<double>(spec.rows_per_table));
}

}  // namespace
}  // namespace storage
}  // namespace bouquet

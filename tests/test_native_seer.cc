// Tests for robustness/native and robustness/seer: baseline behaviors and
// the SEER safety contract (MaxHarm <= lambda).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ess/posp_generator.h"
#include "robustness/metrics.h"
#include "robustness/native.h"
#include "robustness/seer.h"
#include "workloads/spaces.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace bouquet {
namespace {

class SeerTest : public ::testing::Test {
 protected:
  SeerTest()
      : tpch_(MakeTpchCatalog(1.0)),
        tpcds_(MakeTpcdsCatalog(100.0)),
        space_(GetSpace("3D_H_Q5", tpch_, tpcds_)),
        grid_(space_.query, {7, 7, 7}),
        diagram_(GeneratePosp(space_.query, tpch_, CostParams::Postgres(),
                              grid_)),
        opt_(space_.query, tpch_, CostParams::Postgres()) {}

  Catalog tpch_, tpcds_;
  NamedSpace space_;
  EssGrid grid_;
  PlanDiagram diagram_;
  QueryOptimizer opt_;
};

TEST_F(SeerTest, ReductionShrinksOrKeepsPlanCount) {
  const SeerResult r = SeerReduce(diagram_, &opt_, 0.2);
  EXPECT_LE(r.plans_after, r.plans_before);
  EXPECT_GE(r.plans_after, 1);
  std::set<int> used(r.plan_at.begin(), r.plan_at.end());
  EXPECT_EQ(static_cast<int>(used.size()), r.plans_after);
}

TEST_F(SeerTest, GlobalSafetyHolds) {
  // With an exhaustive safety set (grid is small), each replaced point's new
  // plan must be within (1+lambda) of the *replaced* plan everywhere; in
  // particular at the point itself relative to the optimal assignment chain.
  const double lambda = 0.2;
  const SeerResult r = SeerReduce(diagram_, &opt_, lambda,
                                  /*max_safety_points=*/1 << 20);
  for (uint64_t i = 0; i < grid_.num_points(); i += 5) {
    if (r.plan_at[i] == diagram_.plan_at(i)) continue;
    const double replaced = opt_.CostPlanAt(
        *diagram_.plan(diagram_.plan_at(i)).root, grid_.SelectivityAt(i));
    const double replacement = opt_.CostPlanAt(
        *diagram_.plan(r.plan_at[i]).root, grid_.SelectivityAt(i));
    // Chains of swallows can compound; allow the transitive factor for the
    // observed reduction depth (conservatively (1+lambda)^3).
    EXPECT_LE(replacement, replaced * std::pow(1.0 + lambda, 3) * (1 + 1e-9));
  }
}

TEST_F(SeerTest, MaxHarmWithinLambdaEnvelope) {
  const double lambda = 0.2;
  const RobustnessProfile nat = ComputeNativeProfile(diagram_, &opt_);
  const SeerResult r =
      SeerReduce(diagram_, &opt_, lambda, /*max_safety_points=*/1 << 20);
  const RobustnessProfile seer =
      ComputeAssignmentProfile(diagram_, &opt_, r.plan_at);
  // Direct single-step safety gives MH <= lambda; allow the transitive
  // slack for swallow chains.
  EXPECT_LE(MaxHarm(seer.subopt_worst, nat.subopt_worst),
            std::pow(1.0 + lambda, 3) - 1.0 + 1e-9);
}

TEST_F(SeerTest, SeerDoesNotFixWorstCase) {
  // The paper's observation: SEER's MSO stays in NAT's league (no
  // orders-of-magnitude improvement).
  const RobustnessProfile nat = ComputeNativeProfile(diagram_, &opt_);
  const SeerResult r = SeerReduce(diagram_, &opt_, 0.2);
  const RobustnessProfile seer =
      ComputeAssignmentProfile(diagram_, &opt_, r.plan_at);
  EXPECT_GT(seer.mso, nat.mso / 10.0);
}

TEST_F(SeerTest, NativeProfileUsesDiagramAssignment) {
  const RobustnessProfile nat = ComputeNativeProfile(diagram_, &opt_);
  EXPECT_EQ(nat.num_plans, diagram_.num_plans());
  EXPECT_GT(nat.mso, 1.0);
}

TEST_F(SeerTest, ZeroLambdaIsConservative) {
  const SeerResult r = SeerReduce(diagram_, &opt_, 0.0);
  // lambda=0 swallows require exact dominance everywhere; typically nothing
  // (or almost nothing) is removed.
  EXPECT_GE(r.plans_after, r.plans_before / 2);
}

}  // namespace
}  // namespace bouquet
